"""The staged execution engine (Cordoba's execution core).

:class:`Engine` turns physical plans into simulator task graphs:

* every plan node becomes one stage task, connected to its consumers
  by bounded page queues;
* a query's root feeds a *sink* task that collects result rows into
  the query's :class:`~repro.engine.packet.QueryHandle`;
* a *sharing group* executes the common sub-plan (the pivot and
  everything below it) exactly once, with the pivot's emitter
  multiplexing pages to one queue per member — eliminating the
  replicated work below the pivot and paying the per-consumer output
  cost the model calls *s* (Section 4.3's three changes, verbatim).

Groups are validated structurally before execution: all members must
carry the pivot, and the signatures of the pivot subtrees must be
identical — merged packets must request the same operation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence

from repro.engine.costs import DEFAULT_COST_MODEL, CostModel
from repro.engine.memory import MemoryBroker
from repro.engine.operators import StageContext, build_operator_task
from repro.engine.packet import GroupHandle, QueryHandle, RowBatch
from repro.engine.plan import PlanNode
from repro.engine.wiring import resolve_storage
from repro.errors import EngineError, PivotError
from repro.sim.events import CLOSED, Compute, Get
from repro.sim.queues import SimQueue
from repro.sim.simulator import Simulator
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.page import DEFAULT_PAGE_ROWS
from repro.storage.shared_scan import ScanShareManager

__all__ = ["Engine"]


class Engine:
    """Executes physical plans on a simulated chip multiprocessor.

    Parameters
    ----------
    catalog:
        The database to query.
    simulator:
        The CMP the stages run on; its processor count is the
        experiment's ``n``.
    costs:
        Per-tuple cost model; defaults are calibrated per DESIGN.md.
    page_rows:
        Tuples per exchanged page (Cordoba's ~4K pages).
    queue_capacity:
        Bounded-buffer depth between stages (finite buffering).
    buffer_pool:
        Optional :class:`~repro.storage.buffer.BufferPool` fronting
        table (and spill) pages; scans charge ``costs.io_page`` per
        miss. ``None`` (default) keeps the seed's free-storage model.
    memory:
        Optional :class:`~repro.engine.memory.MemoryBroker` governing
        operator working memory; the hash join and hash aggregate
        spill when over their grants. When a broker is given without a
        pool, a pool sized to ``work_mem`` (but at least 16 frames) is
        created, bound to the broker, and reused on later engines; a
        bound broker combined with a *different* explicit
        ``buffer_pool`` is rejected (see
        :func:`~repro.engine.wiring.resolve_storage`).
    scan_manager:
        Optional :class:`~repro.storage.shared_scan.ScanShareManager`
        enabling cooperative (elevator) scan sharing: concurrent scans
        of a table attach to one circular cursor and share its
        physical pass, with the manager's async prefetch overlapping
        reads with CPU work. The manager's pool must be the engine's
        pool; given a manager without ``buffer_pool``, the engine
        adopts the manager's. Note that an attached scan emits its
        rows starting at its attach offset: the row *set* is
        unchanged but the order rotates, so floating-point aggregates
        folded over it may differ from an independent run in the last
        ulp (summation order) — the standard cooperative-scan caveat.
    spill_prefetch_depth:
        Read-ahead depth for spill read-back: governed operators
        (hash join cleanup, aggregate finalize, external sort merges)
        stream their spill runs through a
        :class:`~repro.storage.spill_cursor.SpillCursor` of this
        depth, overlapping the runs' ``io_page`` cost with their own
        CPU work. ``None`` (default) inherits the scan manager's
        prefetch depth when one is attached, else 0 (synchronous
        read-back).
    vectorize:
        Selects the operators' columnar batch implementations
        (default). ``False`` pins the row-at-a-time reference path —
        identical answers and simulated time, only host speed differs
        (see :class:`~repro.engine.operators.api.StageContext`).
    """

    def __init__(
        self,
        catalog: Catalog,
        simulator: Simulator,
        costs: CostModel = DEFAULT_COST_MODEL,
        page_rows: int = DEFAULT_PAGE_ROWS,
        queue_capacity: int = 4,
        buffer_pool: Optional[BufferPool] = None,
        memory: Optional[MemoryBroker] = None,
        scan_manager: Optional[ScanShareManager] = None,
        spill_prefetch_depth: Optional[int] = None,
        vectorize: bool = True,
    ) -> None:
        if queue_capacity < 1:
            raise EngineError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        (buffer_pool, memory, scan_manager, spill_prefetch_depth) = (
            resolve_storage(buffer_pool, memory, scan_manager,
                            spill_prefetch_depth)
        )
        self.catalog = catalog
        self.sim = simulator
        self.pool = buffer_pool
        self.memory = memory
        self.scan_manager = scan_manager
        self.ctx = StageContext(catalog=catalog, costs=costs,
                                page_rows=page_rows, pool=buffer_pool,
                                memory=memory, scans=scan_manager,
                                spill_prefetch=spill_prefetch_depth,
                                vectorize=vectorize)
        self.queue_capacity = queue_capacity
        self.handles: list[QueryHandle] = []
        self.groups: list[GroupHandle] = []
        # Stage tasks per group (excluding sinks) — the raw material
        # for online parameter estimation (busy time per operator).
        self.group_tasks: dict[int, list] = {}
        self._group_counter = 0
        self._task_counter = 0
        self._collect_tasks: Optional[list] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(
        self,
        plan: PlanNode,
        label: str,
        on_complete: Optional[Callable[[QueryHandle], None]] = None,
        batch_rows: Optional[int] = None,
        dop: int = 1,
    ) -> QueryHandle:
        """Run one query independently (a sharing group of one).

        ``dop > 1`` requests intra-query parallelism: the plan's
        parallel region (see :mod:`repro.engine.parallel`) runs as
        ``dop`` exchange-connected fragments; plans with no such
        region silently fall back to serial execution. The returned
        row set is identical to the serial plan's either way.
        """
        if dop is None:
            dop = 1
        if dop < 1:
            raise EngineError(f"dop must be >= 1, got {dop}")
        if dop > 1:
            handle = self._execute_parallel(
                plan, label, dop, on_complete, batch_rows
            )
            if handle is not None:
                return handle
        group = self.execute_group([plan], pivot_op_id=None, labels=[label],
                                   on_complete=on_complete,
                                   batch_rows=batch_rows)
        return group.handles[0]

    def _execute_parallel(
        self,
        plan: PlanNode,
        label: str,
        dop: int,
        on_complete: Optional[Callable[[QueryHandle], None]],
        batch_rows: Optional[int],
    ) -> Optional[QueryHandle]:
        """Spawn ``plan`` as a ``dop``-way fragmented task graph.

        Returns ``None`` when the plan has no parallelizable region,
        letting :meth:`execute` fall back to the serial path. The
        bookkeeping mirrors a singleton ``execute_group``: one
        group id, one handle, tasks collected for the profiler.
        """
        from repro.engine.parallel.builder import build_parallel_query, find_region

        if find_region(plan) is None:
            return None
        if batch_rows is not None and batch_rows < 1:
            raise EngineError(f"batch_rows must be >= 1, got {batch_rows}")
        group_ctx = (
            self.ctx if batch_rows is None
            else replace(self.ctx, page_rows=batch_rows)
        )
        group_id = self._group_counter
        self._group_counter += 1
        handle = QueryHandle(
            label=label,
            schema=plan.schema,
            submitted_at=self.sim.now,
            group_id=group_id,
            shared=False,
            on_complete=on_complete,
        )
        collected: list = []
        self._collect_tasks = collected
        root_q = build_parallel_query(self, plan, dop, prefix=label, ctx=group_ctx)
        self._spawn_sink(root_q, handle)
        self._collect_tasks = None
        self.group_tasks[group_id] = collected
        group = GroupHandle(group_id=group_id, pivot_op_id=None, handles=[handle])
        self.groups.append(group)
        self.handles.append(handle)
        return handle

    def execute_group(
        self,
        plans: Sequence[PlanNode],
        pivot_op_id: Optional[str],
        labels: Optional[Sequence[str]] = None,
        on_complete: Optional[
            Callable[[QueryHandle], None]
            | Sequence[Optional[Callable[[QueryHandle], None]]]
        ] = None,
        batch_rows: Optional[int] = None,
    ) -> GroupHandle:
        """Run a group of queries, shared at ``pivot_op_id``.

        With ``pivot_op_id=None`` (allowed only for singleton groups)
        or a single plan, execution is plain independent execution.
        For m > 1 the pivot subtree runs once, multiplexed m ways.
        ``on_complete`` may be one callback for every member or a
        per-member sequence. ``batch_rows`` overrides the engine's
        ``page_rows`` for this group's stages only — the batch size the
        group's operators exchange (the simulated page geometry follows
        it, so differing batch sizes are different work and must not be
        merged into one sharing group).
        """
        if not plans:
            raise EngineError("execute_group() needs at least one plan")
        labels = list(labels) if labels is not None else [
            f"q{i}" for i in range(len(plans))
        ]
        if len(labels) != len(plans):
            raise EngineError("labels must match plans one-to-one")
        if on_complete is None or callable(on_complete):
            callbacks: list = [on_complete] * len(plans)
        else:
            callbacks = list(on_complete)
            if len(callbacks) != len(plans):
                raise EngineError("on_complete list must match plans")
        if pivot_op_id is None and len(plans) > 1:
            raise EngineError("a multi-query group requires a pivot")
        if pivot_op_id is not None:
            self._validate_group(plans, pivot_op_id)

        group_id = self._group_counter
        self._group_counter += 1
        handles = [
            QueryHandle(
                label=label,
                schema=plan.schema,
                submitted_at=self.sim.now,
                group_id=group_id,
                shared=len(plans) > 1,
                on_complete=callback,
            )
            for plan, label, callback in zip(plans, labels, callbacks)
        ]

        if batch_rows is not None and batch_rows < 1:
            raise EngineError(f"batch_rows must be >= 1, got {batch_rows}")
        group_ctx = (
            self.ctx if batch_rows is None
            else replace(self.ctx, page_rows=batch_rows)
        )
        collected: list = []
        self._collect_tasks = collected
        if pivot_op_id is None or len(plans) == 1:
            for plan, handle in zip(plans, handles):
                sink_q = self._build_subplan(plan, consumers=1,
                                             prefix=handle.label,
                                             ctx=group_ctx)[0]
                self._spawn_sink(sink_q, handle)
        else:
            pivot = plans[0].find(pivot_op_id)
            # The shared subtree may only ride an elevator cursor if
            # *every* member is order-insensitive above the pivot.
            pivot_rotation_ok = all(
                self._rotation_ok_at(plan, pivot_op_id, True)
                for plan in plans
            )
            member_queues = self._build_subplan(
                pivot, consumers=len(plans), prefix=f"g{group_id}",
                rotation_ok=pivot_rotation_ok, ctx=group_ctx,
            )
            for plan, handle, shared_q in zip(plans, handles, member_queues):
                if plan.op_id == pivot_op_id:
                    # Sharing at the root: the member consumes the
                    # pivot's output directly.
                    self._spawn_sink(shared_q, handle)
                    continue
                root_q = self._build_subplan(
                    plan,
                    consumers=1,
                    prefix=handle.label,
                    substitutions={pivot_op_id: shared_q},
                    ctx=group_ctx,
                )[0]
                self._spawn_sink(root_q, handle)

        self._collect_tasks = None
        self.group_tasks[group_id] = collected
        group = GroupHandle(group_id=group_id, pivot_op_id=pivot_op_id,
                            handles=handles)
        self.groups.append(group)
        self.handles.extend(handles)
        return group

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _validate_group(self, plans: Sequence[PlanNode], pivot_op_id: str) -> None:
        reference = plans[0].find(pivot_op_id)
        for plan in plans[1:]:
            candidate = plan.find(pivot_op_id)
            if candidate.signature != reference.signature:
                raise PivotError(
                    f"plans disagree below pivot {pivot_op_id!r}: "
                    f"{candidate.signature!r} != {reference.signature!r}; "
                    "only identical sub-plans can be merged"
                )

    # Operators whose semantics depend on their input's row order: a
    # scan feeding one of these (without an order-restoring barrier in
    # between) must not attach to a rotated elevator cursor — limit
    # would keep different rows, merge join would reject or mismatch.
    _ORDER_SENSITIVE = frozenset({"limit", "merge_join"})
    # Operators that canonicalize order, making everything below them
    # safe to rotate again.
    _ORDER_BARRIERS = frozenset({"sort", "aggregate"})

    def _rotation_ok_at(
        self, node: PlanNode, target_op_id: str, flag: bool
    ) -> Optional[bool]:
        """Whether a rotated scan is safe at ``target_op_id``'s position
        (None when the target is not in this subtree)."""
        if node.op_id == target_op_id:
            return flag
        if node.kind in self._ORDER_BARRIERS:
            child_flag = True
        elif node.kind in self._ORDER_SENSITIVE:
            child_flag = False
        else:
            child_flag = flag
        for child in node.children:
            result = self._rotation_ok_at(child, target_op_id, child_flag)
            if result is not None:
                return result
        return None

    def _build_subplan(
        self,
        node: PlanNode,
        consumers: int,
        prefix: str,
        substitutions: Optional[dict[str, SimQueue]] = None,
        rotation_ok: bool = True,
        ctx: Optional[StageContext] = None,
    ) -> list[SimQueue]:
        """Recursively spawn stage tasks; returns the output queues.

        ``substitutions`` maps op_ids to externally provided queues —
        used to graft a member's private plan onto the shared pivot's
        per-member output queue. ``rotation_ok`` tracks whether a scan
        at this position may ride a shared elevator cursor (emit its
        rows rotated to the attach offset): an order-sensitive
        ancestor clears it, an order-restoring barrier resets it.
        ``ctx`` overrides the engine-wide stage context (used to apply
        a per-group batch-size override).
        """
        substitutions = substitutions or {}
        base_ctx = self.ctx if ctx is None else ctx
        out_queues = [
            self.sim.queue(
                f"{prefix}:{node.op_id}->out{i}", self.queue_capacity
            )
            for i in range(consumers)
        ]
        if node.kind in self._ORDER_BARRIERS:
            child_rotation_ok = True
        elif node.kind in self._ORDER_SENSITIVE:
            child_rotation_ok = False
        else:
            child_rotation_ok = rotation_ok
        in_queues = []
        for child in node.children:
            if child.op_id in substitutions:
                in_queues.append(substitutions[child.op_id])
            else:
                (child_q,) = self._build_subplan(
                    child, consumers=1, prefix=prefix,
                    substitutions=substitutions,
                    rotation_ok=child_rotation_ok,
                    ctx=ctx,
                )
                in_queues.append(child_q)
        stage_ctx = base_ctx
        if (node.kind == "scan" and not rotation_ok
                and stage_ctx.scans is not None):
            stage_ctx = replace(stage_ctx, scans=None)
        task_gen = build_operator_task(node, in_queues, out_queues, stage_ctx)
        self._task_counter += 1
        task = self.sim.spawn(
            task_gen,
            name=f"{prefix}/{node.op_id}",
            group=prefix,
        )
        if self._collect_tasks is not None:
            self._collect_tasks.append(task)
        return out_queues

    def _spawn_sink(self, in_queue: SimQueue, handle: QueryHandle) -> None:
        costs = self.ctx.costs
        sim = self.sim

        def sink():
            while True:
                page = yield Get(in_queue)
                if page is CLOSED:
                    break
                n = page._n if page.__class__ is RowBatch else len(page)
                yield Compute(costs.sink_tuple * n)
                handle.append_batch(page)

        def finished(_task):
            handle.mark_done(sim.now)

        sim.spawn(sink(), name=f"{handle.label}/sink", group=handle.label,
                  on_done=finished)
