"""Execution statistics: where did the cycles go?

:func:`stage_report` aggregates a simulation's per-task busy times by
operator, giving the per-stage breakdown the paper's profiling
procedure starts from (Section 3.1) and the first thing an engine
developer asks for when a pipeline underperforms ("which stage is the
bottleneck?").

:func:`resource_report` is the storage-side companion: buffer-pool
hit/miss/eviction counters and the memory broker's grant high-water
marks and spill traffic, for engines running with the memory
governance layer (``buffer_pool`` / ``memory``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.engine.memory import MemoryBroker, MemorySnapshot
from repro.sim.simulator import Simulator
from repro.sim.task import Task
from repro.storage.buffer import BufferPool, BufferSnapshot

__all__ = [
    "StageStats",
    "StageReport",
    "stage_report",
    "ResourceReport",
    "resource_report",
]


@dataclass(frozen=True)
class StageStats:
    """Aggregated activity of one operator across all its instances.

    ``io_time`` is the portion of ``busy_time`` the stage spent
    stalled on storage (tagged by ``Compute(io=...)``) — nonzero only
    for stages that read through a buffer pool or spill.
    ``drift_throttle`` is *off-processor* pacing time (tagged by
    ``Sleep(throttle=True)``): a scan head the share manager paused
    so a drifting convoy could close up. It is not part of
    ``busy_time`` — a throttled head holds no processor — but it is
    latency the stage's consumers see, so it gets its own stall
    category here. ``queue_block`` is off-processor time parked on a
    full/empty bounded queue (Put/Get blocking) — the serialization
    component of the paper's decomposition: a producer throttled by a
    slow consumer, or a consumer starved by a slow producer.
    """

    op_id: str
    instances: int
    busy_time: float
    busy_share: float
    io_time: float = 0.0
    drift_throttle: float = 0.0
    queue_block: float = 0.0

    @property
    def io_share(self) -> float:
        """Fraction of this stage's busy time that was I/O stall."""
        return self.io_time / self.busy_time if self.busy_time else 0.0

    def __repr__(self) -> str:
        return (
            f"StageStats({self.op_id}, x{self.instances}, "
            f"busy={self.busy_time:.6g}, {self.busy_share:.1%}, "
            f"io={self.io_time:.6g}, throttle={self.drift_throttle:.6g})"
        )


@dataclass(frozen=True)
class StageReport:
    """All stages of a run, ordered by busy time (bottleneck first)."""

    stages: tuple[StageStats, ...]
    total_busy: float

    def bottleneck(self) -> StageStats:
        if not self.stages:
            raise ValueError("report is empty")
        return self.stages[0]

    def stage(self, op_id: str) -> StageStats:
        for stats in self.stages:
            if stats.op_id == op_id:
                return stats
        raise KeyError(op_id)

    def render(self) -> str:
        lines = [f"{'stage':>28}  {'inst':>4}  {'busy':>12}  share"]
        for stats in self.stages:
            bar = "#" * max(1, round(stats.busy_share * 40))
            lines.append(
                f"{stats.op_id:>28}  {stats.instances:>4}  "
                f"{stats.busy_time:>12.1f}  {bar}"
            )
        return "\n".join(lines)


def stage_report(
    source: Simulator | Iterable[Task],
    include_sinks: bool = False,
    group_prefix: Optional[str] = None,
) -> StageReport:
    """Aggregate busy time by operator id.

    ``source`` is a simulator (all its tasks) or an explicit task
    iterable (e.g. one group's tasks from ``Engine.group_tasks``).
    ``group_prefix`` filters tasks whose name starts with it.
    """
    tasks = source.tasks if isinstance(source, Simulator) else list(source)
    busy: dict[str, float] = {}
    io: dict[str, float] = {}
    throttle: dict[str, float] = {}
    blocked: dict[str, float] = {}
    instances: dict[str, int] = {}
    for task in tasks:
        if "/" not in task.name:
            continue
        if group_prefix is not None and not task.name.startswith(group_prefix):
            continue
        op_id = task.name.rsplit("/", 1)[-1]
        if op_id == "sink" and not include_sinks:
            continue
        busy[op_id] = busy.get(op_id, 0.0) + task.busy_time
        io[op_id] = io.get(op_id, 0.0) + task.io_time
        throttle[op_id] = throttle.get(op_id, 0.0) + task.throttle_time
        blocked[op_id] = blocked.get(op_id, 0.0) + task.queue_block_time
        instances[op_id] = instances.get(op_id, 0) + 1

    total = sum(busy.values())
    stages = tuple(
        sorted(
            (
                StageStats(
                    op_id=op_id,
                    instances=instances[op_id],
                    busy_time=time,
                    busy_share=(time / total if total else 0.0),
                    io_time=io[op_id],
                    drift_throttle=throttle[op_id],
                    queue_block=blocked[op_id],
                )
                for op_id, time in busy.items()
            ),
            key=lambda s: s.busy_time,
            reverse=True,
        )
    )
    return StageReport(stages=stages, total_busy=total)


@dataclass(frozen=True)
class ResourceReport:
    """Buffer-pool, working-memory, and scan-share counters of one
    engine run.

    Any side may be ``None``/empty when the engine runs without that
    layer (the seed configuration has none of them). ``scans`` is the
    :class:`~repro.storage.shared_scan.ScanShareManager`'s per-table
    snapshot — including the drift block (max lag, throttle stall,
    group-window splits/merges) — when cooperative scans are wired.
    """

    buffer: Optional[BufferSnapshot]
    memory: Optional[MemorySnapshot]
    scans: tuple = ()

    @property
    def spill_pages_written(self) -> int:
        return self.buffer.spill_pages_written if self.buffer else 0

    @property
    def spill_pages_read(self) -> int:
        return self.buffer.spill_pages_read if self.buffer else 0

    @property
    def hit_rate(self) -> float:
        return self.buffer.hit_rate if self.buffer else 0.0

    @property
    def spill_prefetch_issued(self) -> int:
        """Spill-page reads issued ahead of use by SpillCursors."""
        return self.buffer.spill_prefetch_issued if self.buffer else 0

    @property
    def spill_read_stall(self) -> float:
        """Spill read-back cost paid as synchronous stall."""
        return self.buffer.spill_read_stall if self.buffer else 0.0

    @property
    def spill_read_overlapped(self) -> float:
        """Spill read-back cost hidden behind operator CPU work."""
        return self.buffer.spill_read_overlapped if self.buffer else 0.0

    @property
    def drift_throttle_stall(self) -> float:
        """Head-pause cost charged by the drift bound across tables."""
        return sum(s.throttle_stall_cost for s in self.scans)

    @property
    def scan_splits(self) -> int:
        """Group windows opened by drift violations across tables."""
        return sum(s.splits for s in self.scans)

    @property
    def scan_merges(self) -> int:
        """Group windows merged back (laps and drains) across tables."""
        return sum(s.merges for s in self.scans)

    def scan_stats(self, table: str):
        """The share/drift statistics of one table's elevator."""
        for stats in self.scans:
            if stats.table == table:
                return stats
        raise KeyError(table)

    def grant_notes(self, owner: str) -> dict:
        """Operator-reported facts for one grant owner (e.g. the
        external sort's ``sort_runs`` / ``merge_passes``)."""
        if self.memory is None:
            raise KeyError(owner)
        for grant in self.memory.grants:
            if grant.owner == owner:
                return dict(grant.notes)
        raise KeyError(owner)

    def render(self) -> str:
        lines = []
        if self.buffer is not None:
            lines.append(self.buffer.render())
        if self.memory is not None:
            lines.append(self.memory.render())
        lines.extend(stats.render() for stats in self.scans)
        return "\n".join(lines) if lines else "no resource governance attached"


def resource_report(
    source,
    memory: Optional[MemoryBroker] = None,
) -> ResourceReport:
    """Snapshot buffer/memory/scan counters from an engine (or a pool).

    ``source`` is an :class:`~repro.engine.engine.Engine` (its ``pool``,
    ``memory``, and ``scan_manager`` are read), or a
    :class:`BufferPool` combined with an explicit ``memory`` broker.
    """
    scans = None
    if isinstance(source, BufferPool):
        pool = source
    else:
        pool = getattr(source, "pool", None)
        if memory is None:
            memory = getattr(source, "memory", None)
        scans = getattr(source, "scan_manager", None)
    return ResourceReport(
        buffer=pool.snapshot() if pool is not None else None,
        memory=memory.snapshot() if memory is not None else None,
        scans=scans.snapshot() if scans is not None else (),
    )
