"""Query packets, handles and results.

In Cordoba, a submitted query is decomposed into *packets* routed to
operator stages; a packet names the work one operator performs on
behalf of one query. In this reproduction the packet bookkeeping is
carried by :class:`QueryHandle` (one per submitted query) and
:class:`GroupHandle` (one per sharing group — the merged packet set):
the handle records lifecycle timestamps and collects the final rows
from the query's sink stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import EngineError
from repro.storage.schema import Schema

__all__ = ["QueryHandle", "GroupHandle"]


@dataclass
class QueryHandle:
    """Lifecycle and result of one submitted query.

    ``submitted_at``/``finished_at`` are simulated times; ``rows`` is
    filled by the sink stage when the query's pipeline drains.
    """

    label: str
    schema: Schema
    submitted_at: float
    group_id: int = -1
    shared: bool = False
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    finished_at: Optional[float] = None
    on_complete: Optional[Callable[["QueryHandle"], None]] = None

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def response_time(self) -> float:
        if self.finished_at is None:
            raise EngineError(f"query {self.label!r} has not finished")
        return self.finished_at - self.submitted_at

    def mark_done(self, now: float) -> None:
        if self.finished_at is not None:
            raise EngineError(f"query {self.label!r} finished twice")
        self.finished_at = now
        if self.on_complete is not None:
            self.on_complete(self)

    def __repr__(self) -> str:
        state = f"done@{self.finished_at:.6g}" if self.done else "running"
        return f"QueryHandle({self.label!r}, {state})"


@dataclass
class GroupHandle:
    """One execution of a (possibly singleton) sharing group."""

    group_id: int
    pivot_op_id: Optional[str]
    handles: list[QueryHandle]

    @property
    def size(self) -> int:
        return len(self.handles)

    @property
    def shared(self) -> bool:
        return self.size > 1

    @property
    def done(self) -> bool:
        return all(h.done for h in self.handles)

    def completion_time(self) -> float:
        if not self.done:
            raise EngineError(f"group {self.group_id} has unfinished queries")
        return max(h.finished_at for h in self.handles)
