"""Query packets, batches, handles and results.

In Cordoba, a submitted query is decomposed into *packets* routed to
operator stages; a packet names the work one operator performs on
behalf of one query. In this reproduction the packet bookkeeping is
carried by :class:`QueryHandle` (one per submitted query) and
:class:`GroupHandle` (one per sharing group — the merged packet set):
the handle records lifecycle timestamps and collects the final rows
from the query's sink stage.

:class:`RowBatch` is the data payload of a packet: the columnar batch
of tuples operators exchange over the stage queues. It replaces the
row-tuple :class:`~repro.storage.page.Page` on the exchange path (the
storage layer keeps ``Page`` for table and spill I/O) while exposing
the same read surface (``len``, iteration, ``.rows``), so batch-aware
operators read column lists and everything else still sees tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import compress
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.errors import EngineError
from repro.storage.schema import Schema

__all__ = ["RowBatch", "QueryHandle", "GroupHandle"]


class RowBatch:
    """A columnar batch of tuples flowing between stages.

    A batch is backed by *either* column lists (one list per column —
    the scan/filter/project fast path) or a row-tuple sequence (the
    join/sort/aggregate output path), plus an optional *selection
    vector* of keep-flags over the backing columns. The other
    representation, and the application of the selection, are
    materialized lazily and cached — a batch that flows from a scan
    through the emitter to a sink materializes row tuples exactly
    once, at the sink.

    Batches are immutable by convention once emitted (like ``Page``);
    the lazy caches only add derived views. Unlike ``Page``, an empty
    batch is legal (operators build batches before knowing whether any
    row survived); emitters simply never flush one.
    """

    __slots__ = ("_columns", "_rows", "_sel", "_n", "width")

    def __init__(self) -> None:  # use the from_* constructors
        self._columns: Optional[list[list[Any]]] = None
        self._rows: Optional[tuple[tuple[Any, ...], ...]] = None
        self._sel: Optional[Sequence[Any]] = None
        self._n = 0
        self.width = 0

    @classmethod
    def from_columns(cls, columns: Sequence[Sequence[Any]], n: Optional[int] = None) -> "RowBatch":
        """Wrap column lists (not copied; hand over ownership)."""
        batch = cls.__new__(cls)
        batch._columns = columns if isinstance(columns, list) else list(columns)
        batch._rows = None
        batch._sel = None
        batch._n = len(columns[0]) if n is None else n
        batch.width = len(columns)
        return batch

    @classmethod
    def from_rows(cls, rows: Sequence[tuple[Any, ...]], width: Optional[int] = None) -> "RowBatch":
        """Wrap a row-tuple sequence (not copied; hand over ownership)."""
        batch = cls.__new__(cls)
        batch._columns = None
        batch._rows = rows if isinstance(rows, tuple) else tuple(rows)
        batch._sel = None
        batch._n = len(rows)
        if width is None:
            width = len(rows[0]) if rows else 0
        batch.width = width
        return batch

    def select(self, flags: Sequence[Any], kept: int) -> "RowBatch":
        """A view keeping the rows whose flag is truthy.

        ``flags`` is the selection vector (one truthy/falsy entry per
        row, e.g. a batch-compiled predicate's output); ``kept`` is the
        number of truthy flags. Columns are compressed lazily on first
        access, so chained inspections of ``len`` stay O(1).
        """
        batch = RowBatch.__new__(RowBatch)
        batch._columns = self.columns if self._sel is None else None
        batch._rows = self.rows if batch._columns is None else None
        batch._sel = flags
        batch._n = kept
        batch.width = self.width
        return batch

    @property
    def columns(self) -> list[list[Any]]:
        """The column lists (selection applied; cached)."""
        cols = self._columns
        if cols is not None and self._sel is None:
            return cols
        sel = self._sel
        if cols is not None:
            cols = [list(compress(col, sel)) for col in cols]
        else:
            rows = self._rows
            if sel is not None:
                rows = tuple(compress(rows, sel))
                self._rows = rows
            if rows:
                cols = [list(col) for col in zip(*rows)]
            else:
                cols = [[] for _ in range(self.width)]
        self._columns = cols
        self._sel = None
        return cols

    @property
    def rows(self) -> tuple[tuple[Any, ...], ...]:
        """The row tuples (selection applied; cached)."""
        rows = self._rows
        if rows is not None and self._sel is None:
            return rows
        if rows is not None:
            rows = tuple(compress(rows, self._sel))
            self._sel = None
        else:
            rows = tuple(zip(*self.columns))
        self._rows = rows
        return rows

    def column(self, index: int) -> list[Any]:
        """One materialized column (selection applied)."""
        return self.columns[index]

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __repr__(self) -> str:
        backing = "rows" if self._columns is None else "columns"
        return f"RowBatch({self._n} rows x {self.width} cols, {backing})"


@dataclass
class QueryHandle:
    """Lifecycle and result of one submitted query.

    ``submitted_at``/``finished_at`` are simulated times; ``rows`` is
    filled by the sink stage when the query's pipeline drains. The sink
    hands over whole columnar batches (:meth:`append_batch`) and the
    row tuples materialize lazily on first ``rows`` access — results
    stay columnar end to end unless someone actually reads tuples.
    """

    label: str
    schema: Schema
    submitted_at: float
    group_id: int = -1
    shared: bool = False
    finished_at: Optional[float] = None
    on_complete: Optional[Callable[["QueryHandle"], None]] = None
    _batches: list = field(default_factory=list, repr=False)
    _rows: list[tuple[Any, ...]] = field(default_factory=list, repr=False)

    def append_batch(self, batch) -> None:
        """Collect one result batch (anything exposing ``.rows``)."""
        self._batches.append(batch)

    @property
    def rows(self) -> list[tuple[Any, ...]]:
        """The result tuples (pending batches materialize here)."""
        if self._batches:
            rows = self._rows
            for batch in self._batches:
                rows.extend(batch.rows)
            self._batches.clear()
        return self._rows

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def response_time(self) -> float:
        if self.finished_at is None:
            raise EngineError(f"query {self.label!r} has not finished")
        return self.finished_at - self.submitted_at

    def mark_done(self, now: float) -> None:
        if self.finished_at is not None:
            raise EngineError(f"query {self.label!r} finished twice")
        self.finished_at = now
        if self.on_complete is not None:
            self.on_complete(self)

    def __repr__(self) -> str:
        state = f"done@{self.finished_at:.6g}" if self.done else "running"
        return f"QueryHandle({self.label!r}, {state})"


@dataclass
class GroupHandle:
    """One execution of a (possibly singleton) sharing group."""

    group_id: int
    pivot_op_id: Optional[str]
    handles: list[QueryHandle]

    @property
    def size(self) -> int:
        return len(self.handles)

    @property
    def shared(self) -> bool:
        return self.size > 1

    @property
    def done(self) -> bool:
        return all(h.done for h in self.handles)

    def completion_time(self) -> float:
        if not self.done:
            raise EngineError(f"group {self.group_id} has unfinished queries")
        return max(h.finished_at for h in self.handles)
