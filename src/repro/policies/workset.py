"""Working-set estimation for the session's automatic advisor.

The spill projection in :class:`~repro.policies.resource_outlook`
needs to know how many ``work_mem`` pages a query's *stateful*
operators (hash tables, sort buffers, grouped accumulators) will
claim. The profiler cannot measure that — it runs on ungoverned
simulators — and before this module the session simply passed
``work_pages=0``, so the auto-advisor never saw spill pressure and
the ``fig_mem`` memory flip only worked with hand-built specs.

:func:`estimate_work_pages` closes that gap with a textbook
cardinality walk over the plan: base-table row counts come from the
catalog, predicates and joins apply the standard selectivity
defaults, and each stateful operator's held rows are converted to
pages at the engine's exchange geometry. Estimates are deliberately
simple and deterministic — they feed a *relative* shared-vs-unshared
projection, where being consistently approximate matters more than
being individually right.
"""

from __future__ import annotations

from math import ceil

from repro.engine.plan import PlanNode
from repro.storage.catalog import Catalog

__all__ = ["estimate_cardinality", "estimate_work_pages"]

# Selectivity defaults (System R lineage): a predicate keeps one third
# of its input; a grouped aggregate emits one tenth of it.
FILTER_SELECTIVITY = 1 / 3
GROUP_FRACTION = 1 / 10


def estimate_cardinality(plan: PlanNode, catalog: Catalog) -> float:
    """Estimated output rows of ``plan`` (fractional; never negative).

    Scans read exact base-table counts from the catalog; everything
    above is the standard estimate: filters (standalone or fused into
    a scan) keep :data:`FILTER_SELECTIVITY` of their input, grouped
    aggregates emit :data:`GROUP_FRACTION` distinct groups, ungrouped
    aggregates one row, equi-joins ``max(|L|, |R|)`` (the containment
    assumption with unknown key distincts), nested-loop joins the
    filtered cross product, and ``limit`` truncates.
    """
    kind = plan.kind
    if kind == "scan":
        rows = float(len(catalog.table(plan.params["table"])))
        if plan.params.get("predicate") is not None:
            rows *= FILTER_SELECTIVITY
        return rows
    children = [estimate_cardinality(child, catalog) for child in plan.children]
    if kind == "filter":
        return children[0] * FILTER_SELECTIVITY
    if kind in ("project", "sort"):
        return children[0]
    if kind == "limit":
        return min(children[0], float(plan.params["count"]))
    if kind == "aggregate":
        if plan.params.get("group_by"):
            return max(1.0, children[0] * GROUP_FRACTION)
        return 1.0
    if kind in ("hash_join", "merge_join"):
        return max(children)
    if kind == "nested_loop_join":
        return children[0] * children[1] * FILTER_SELECTIVITY
    # Unknown operator: assume it passes its (widest) input through.
    return max(children) if children else 0.0


def estimate_work_pages(plan: PlanNode, catalog: Catalog, page_rows: int) -> int:
    """Estimated ``work_mem`` pages the plan's stateful operators hold
    at once, at ``page_rows`` tuples per page.

    Counts exactly the state the :class:`~repro.engine.memory` broker
    governs: a hash join's build table, a sort's run buffer, and a
    grouped aggregate's accumulator table (ungrouped aggregation holds
    one row — charged nothing). A nested-loop join buffers its inner
    side the same way a build table is held. Blocking operators in one
    plan can be live simultaneously (a sort above a hash join holds
    rows while the join still holds its build side), so contributions
    sum.
    """
    if page_rows < 1:
        raise ValueError(f"page_rows must be >= 1, got {page_rows}")
    pages = 0
    for node in plan.walk():
        kind = node.kind
        if kind == "hash_join":
            held = estimate_cardinality(node.children[0], catalog)
        elif kind == "sort":
            held = estimate_cardinality(node.children[0], catalog)
        elif kind == "aggregate" and node.params.get("group_by"):
            held = estimate_cardinality(node, catalog)
        elif kind == "nested_loop_join":
            held = estimate_cardinality(node.children[1], catalog)
        else:
            continue
        pages += ceil(held / page_rows) if held > 0 else 0
    return pages
