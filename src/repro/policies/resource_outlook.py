"""Resource projections feeding the sharing decision.

The Section-4 model prices sharing in CPU terms from profiled
``(w, s)`` parameters; ``fig_mem`` Part B showed the decision *flips*
with cache temperature — cold unshared tenants each pay the full
``io_page`` bill while a shared pivot pays it once — but getting that
flip required re-profiling the query against a cold pool.
:class:`ResourceOutlook` automates it: it projects, from the live
resource layer, the extra work an *unshared* execution of the
prospective group would pay over a shared one, and folds that
difference into the pivot's ``w`` before the model runs.

The fold exploits the model's structure: the pivot's ``w`` is counted
once under sharing and ``m`` times unshared, so adding
``X = (unshared_extra - shared_extra) / (m - 1)`` to it widens the
unshared-vs-shared gap by exactly the projected resource delta.

Two projections contribute:

* **Cold-scan I/O** — ``io_page`` times the pivot table's non-resident
  pages. With a :class:`~repro.storage.shared_scan.ScanShareManager`
  attached the *unshared* queries also share the physical pass (they
  attach to the same elevator cursor), so the manager's
  ``projected_attach_benefit`` shrinks the unshared bill toward the
  shared one and the decision reverts to CPU terms — cooperative
  scans make pivot-sharing unnecessary for I/O alone. That promise
  only holds for convoys that stay together: a profile with
  ``cpu_skew > 1`` (slowest rider's per-page CPU over the fastest's)
  projects *drift*, and the attach benefit is discounted by the
  manager's drift governance — unbounded drift degrades toward
  private passes, group windows hold two, throttling keeps one — so
  ModelGuided stops over-promising sharing to skewed convoys.
* **Spill pressure** — the :class:`~repro.engine.memory.MemoryBroker`'s
  ``projected_spill``: m unshared queries each claim the query's
  working pages while a shared group claims them once; every avoided
  spill page saves a ``spill_page`` write and an ``io_page`` read-back.

Units: projections are in cost-model units, the same units the
profiler's busy-time ``w`` values are expressed in at contention-free
speed — the approximation the experiments validate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.contention import ContentionLike, resolve
from repro.core.spec import OperatorSpec, QuerySpec
from repro.engine.costs import CostModel
from repro.engine.memory import MemoryBroker
from repro.errors import PolicyError
from repro.storage.buffer import BufferPool
from repro.storage.shared_scan import ScanShareManager

__all__ = ["ResourceProfile", "ResourceOutlook", "ParallelProjection"]

# Tie-break preference for the mode choice: earlier entries win equal
# projected makespans (the simpler execution shape is preferred when
# the model sees no difference).
MODES = ("solo", "share", "parallel", "both")


@dataclass(frozen=True)
class ParallelProjection:
    """The outlook's verdict on one share-vs-parallelize choice.

    ``mode`` is the arm with the smallest projected makespan among
    ``solo`` (m independent serial queries), ``share`` (one pivot-
    shared group of m), ``parallel`` (m independent queries, each
    split into ``dop`` exchange-connected fragments), and ``both``
    (the Section 8.1 arrangement: several smaller shared groups run
    concurrently, reaping sharing *and* parallelism). ``makespans``
    holds every arm's projection (``inf`` = arm unavailable);
    ``partition_group_size`` is the per-group size behind a ``both``
    verdict (0 otherwise).
    """

    mode: str
    dop: int
    group_size: int
    makespans: Mapping[str, float] = field(default_factory=dict)
    partition_group_size: int = 0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise PolicyError(f"mode must be one of {MODES}, got {self.mode!r}")


@dataclass(frozen=True)
class ResourceProfile:
    """Static resource footprint of one query type.

    ``table``/``pages`` describe the pivot's base-table scan;
    ``work_pages`` the working memory its stateful operators (hash
    tables, sort buffers) claim. ``cpu_skew`` is the projected
    per-page CPU ratio between the slowest and fastest concurrent
    consumer of the query type (1.0 = a uniform convoy): it is what
    lets the outlook discount the cooperative-scan attach benefit by
    projected drift.
    """

    table: str
    pages: int
    work_pages: int = 0
    cpu_skew: float = 1.0

    def __post_init__(self) -> None:
        if self.pages < 0:
            raise PolicyError(f"pages must be >= 0, got {self.pages}")
        if self.work_pages < 0:
            raise PolicyError(
                f"work_pages must be >= 0, got {self.work_pages}"
            )
        if self.cpu_skew < 1:
            raise PolicyError(
                f"cpu_skew must be >= 1, got {self.cpu_skew}"
            )


class ResourceOutlook:
    """Projects I/O and memory effects of sharing for the policies.

    Parameters
    ----------
    profiles:
        ``query_name -> ResourceProfile``. Queries without a profile
        get no adjustment (pure CPU decision).
    costs:
        The engine's cost model (``io_page`` / ``spill_page`` terms).
    pool:
        The buffer pool whose residency the I/O projection reads.
    scans:
        Optional scan-share manager; when present, unshared scans are
        assumed to attach cooperatively and the I/O penalty shrinks.
    memory:
        Optional broker for the spill projection.
    """

    def __init__(
        self,
        profiles: Mapping[str, ResourceProfile],
        costs: CostModel,
        pool: Optional[BufferPool] = None,
        scans: Optional[ScanShareManager] = None,
        memory: Optional[MemoryBroker] = None,
    ) -> None:
        if scans is not None and pool is None:
            pool = scans.pool
        self.profiles = dict(profiles)
        self.costs = costs
        self.pool = pool
        self.scans = scans
        self.memory = memory

    # ------------------------------------------------------------------

    def cold_pages(self, profile: ResourceProfile) -> int:
        """The profile's table pages not currently resident."""
        if self.pool is None:
            return 0
        return max(
            0, profile.pages - self.pool.resident_pages(profile.table)
        )

    def pivot_extra_work(self, query_name: str, group_size: int) -> float:
        """Per-query pivot-``w`` increment encoding the projected
        resource advantage of sharing a group of ``group_size``.

        Returns 0 when nothing is projected (warm cache, ample
        memory, unknown query, or a singleton group).
        """
        profile = self.profiles.get(query_name)
        if profile is None or group_size < 2:
            return 0.0
        m = group_size

        # Cold-scan I/O: unshared total vs shared total. The attach
        # benefit is discounted by projected drift for skewed convoys
        # (a pivot-shared group has one scan, so the shared side
        # cannot drift).
        cold = self.cold_pages(profile)
        if self.scans is not None:
            unshared_io = m * self.scans.projected_attach_benefit(
                profile.table, profile.pages, m,
                cpu_skew=profile.cpu_skew,
            )
        else:
            unshared_io = float(m * cold)
        shared_io = float(cold)
        extra = max(0.0, unshared_io - shared_io) * self.costs.io_page

        # Spill pressure: every avoided spill page saves a write and a
        # read-back.
        if self.memory is not None and profile.work_pages:
            unshared_spill = self.memory.projected_spill(
                profile.work_pages, operators=m
            )
            shared_spill = self.memory.projected_spill(profile.work_pages)
            extra += max(0, unshared_spill - shared_spill) * (
                self.costs.spill_page + self.costs.io_page
            )

        return extra / (m - 1)

    def share_vs_parallelize(
        self,
        query_name: str,
        group_size: int,
        processors: int,
        dop: int,
        shared_rate: float,
        unshared_rate: float,
        contention: ContentionLike = None,
        partition_skew: float = 1.0,
        spec: Optional[QuerySpec] = None,
        pivot_name: Optional[str] = None,
    ) -> ParallelProjection:
        """Project the makespan of every execution arm and pick one.

        The serial arms reuse the Section-4 rates the caller already
        computed (``m / rate``). The ``parallel`` arm scales the solo
        makespan by a speedup built from three factors:

        * **context headroom** — a query can use at most
          ``min(dop, n/m)`` contexts before its siblings contend for
          them (and never fewer than 1);
        * **partition skew** — fragments finish with the largest
          partition, so the split itself buys at most
          ``dop / partition_skew`` (``skew = dop * largest partition
          share``; 1.0 = perfectly even);
        * **contention** — busying ``min(m*dop, n)`` contexts instead
          of ``min(m, n)`` drops per-context speed by the power-law
          ratio ``(busy_par / busy_solo) ** (kappa - 1)`` (Section
          4.1.4) — parallelism stops paying exactly where shared
          hardware saturates.

        The ``both`` arm (needs ``spec``/``pivot_name`` and ``m >= 3``)
        asks :meth:`~repro.core.decision.ShareAdvisor.best_partitioning`
        for the best split of the m clients into several concurrent
        shared groups; it only competes when the winning arrangement is
        strictly between one big group and all-solo.

        Modes tie-break toward the simpler shape (solo before share
        before parallel before both).
        """
        if group_size < 1:
            raise PolicyError(f"group_size must be >= 1, got {group_size}")
        if dop < 1:
            raise PolicyError(f"dop must be >= 1, got {dop}")
        if partition_skew < 1:
            raise PolicyError(
                f"partition_skew must be >= 1, got {partition_skew}"
            )
        m = group_size
        n = float(processors)
        makespans: dict[str, float] = {mode: math.inf for mode in MODES}
        if unshared_rate > 0:
            makespans["solo"] = m / unshared_rate
        if m >= 2 and shared_rate > 0:
            makespans["share"] = m / shared_rate
        if dop >= 2 and makespans["solo"] < math.inf:
            model = resolve(contention)
            per_query = max(1.0, min(float(dop), n / m))
            raw = min(per_query, dop / partition_skew)
            busy_solo = max(1.0, min(float(m), n))
            busy_par = max(1.0, min(float(m * dop), n))
            discount = (model.effective(busy_par) / busy_par) / (
                model.effective(busy_solo) / busy_solo
            )
            speedup = raw * discount
            if speedup > 0:
                makespans["parallel"] = makespans["solo"] / speedup
        partition_group = 0
        if spec is not None and pivot_name is not None and m >= 3:
            from repro.core.decision import ShareAdvisor

            advisor = ShareAdvisor(processors=n, contention=contention)
            arrangement = advisor.best_partitioning(spec, pivot_name, m)
            if 1 < arrangement.group_size < m and arrangement.predicted_rate > 0:
                makespans["both"] = m / arrangement.predicted_rate
                partition_group = arrangement.group_size
        mode = min(MODES, key=lambda k: makespans[k])
        if mode != "both":
            partition_group = 0
        return ParallelProjection(
            mode=mode,
            dop=dop,
            group_size=m,
            makespans=makespans,
            partition_group_size=partition_group,
        )

    def adjusted_spec(
        self, query_name: str, spec: QuerySpec, pivot_name: str,
        group_size: int,
    ) -> QuerySpec:
        """Return ``spec`` with the pivot's ``w`` bumped by
        :meth:`pivot_extra_work` (or ``spec`` itself when zero)."""
        extra = self.pivot_extra_work(query_name, group_size)
        if extra <= 0:
            return spec
        pivot = spec[pivot_name]  # validates the pivot exists

        def rebuild(node: OperatorSpec) -> OperatorSpec:
            children = tuple(rebuild(child) for child in node.children)
            work = node.work + extra if node.name == pivot.name else node.work
            if work == node.work and children == node.children:
                return node
            return OperatorSpec(
                name=node.name,
                work=work,
                output_cost=node.output_cost,
                children=children,
                blocking=node.blocking,
                internal_work=node.internal_work,
                emit_work=node.emit_work,
            )

        return QuerySpec(root=rebuild(spec.root), label=spec.label)
