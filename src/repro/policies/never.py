"""The never-share static policy: maximum parallelism, redundant work.

Conservative baseline: every query executes independently. Wins on
many cores for scan-heavy loads, but gives up the enormous benefits of
sharing join-heavy queries (Figure 6 left).
"""

from __future__ import annotations

from repro.policies.base import SharingPolicy

__all__ = ["NeverShare"]


class NeverShare(SharingPolicy):
    name = "never"

    def should_share(self, query_name: str, prospective_size: int,
                     processors: int) -> bool:
        return False
