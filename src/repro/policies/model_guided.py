"""The model-guided policy (Section 8): share only when Z(m, n) > 1.

Holds one profiled :class:`~repro.core.spec.QuerySpec` per query type
(obtained offline via :mod:`repro.profiling`, as in the paper's
Section 3.1 setup) and consults the analytical model on every arrival:
join the group only if sharing the prospective group beats independent
execution on this machine.

With a :class:`~repro.policies.resource_outlook.ResourceOutlook`
attached, the CPU-profiled specs are adjusted per decision with the
projected cold-scan I/O and spill pressure of the prospective group —
the fig_mem Part B cold/warm flip, automated: the same warm-profiled
spec says *don't share* against a warm pool and *share* against a cold
one, and with cooperative scans active the attach benefit cancels the
I/O term again.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.contention import ContentionLike
from repro.core.decision import ShareAdvisor
from repro.core.spec import QuerySpec
from repro.engine.costs import DEFAULT_COST_MODEL
from repro.errors import PolicyError
from repro.obs.audit import AuditLog
from repro.policies.base import SharingPolicy
from repro.policies.resource_outlook import ParallelProjection, ResourceOutlook

__all__ = ["ModelGuidedPolicy"]


class ModelGuidedPolicy(SharingPolicy):
    """Decides via the Section-4 model on profiled query specs.

    Parameters
    ----------
    specs:
        ``query_name -> (QuerySpec, pivot operator name)`` from the
        profiler.
    contention:
        Optional hardware contention spec for the advisor.
    threshold:
        Minimum predicted Z to share. The default demands a 25%
        predicted win rather than any win: the Section-4 model prices
        rates at steady state but not the *batching delay* a runtime
        merge discipline imposes (an arriving query waits for the
        active group to drain before its batch starts), so marginal
        predicted wins lose in practice. The margin absorbs that
        unmodeled cost.
    outlook:
        Optional :class:`~repro.policies.resource_outlook.ResourceOutlook`
        feeding projected I/O and spill effects into each decision.
        Decisions are no longer cached when an outlook is attached —
        residency and memory pressure change between arrivals.
    audit:
        Optional :class:`~repro.obs.audit.AuditLog`; when attached,
        every fresh verdict (cache hits excluded) appends a
        ``source="policy"`` record with the model's projected rates
        and Z-score.
    """

    name = "model"

    def __init__(
        self,
        specs: Mapping[str, tuple[QuerySpec, str]],
        contention: ContentionLike = None,
        threshold: float = 1.25,
        outlook: Optional[ResourceOutlook] = None,
        audit: Optional["AuditLog"] = None,
    ) -> None:
        if not specs:
            raise PolicyError("model-guided policy needs at least one spec")
        self.specs = dict(specs)
        self.contention = contention
        self.threshold = threshold
        self.outlook = outlook
        self.audit = audit
        self._decision_cache: dict[tuple[str, int, int], bool] = {}

    def should_share(self, query_name: str, prospective_size: int,
                     processors: int) -> bool:
        if prospective_size < 2:
            return False
        key = (query_name, prospective_size, processors)
        if self.outlook is None:
            cached = self._decision_cache.get(key)
            if cached is not None:
                return cached
        try:
            spec, pivot = self.specs[query_name]
        except KeyError:
            raise PolicyError(
                f"no model spec for query {query_name!r}; "
                f"have {sorted(self.specs)}"
            ) from None
        if self.outlook is not None:
            spec = self.outlook.adjusted_spec(
                query_name, spec, pivot, prospective_size
            )
        advisor = ShareAdvisor(
            processors=processors,
            contention=self.contention,
            threshold=self.threshold,
        )
        group = [
            spec.relabeled(f"{query_name}#{i}")
            for i in range(prospective_size)
        ]
        decision = advisor.evaluate(group, pivot)
        if self.audit is not None:
            self.audit.append(
                query=query_name,
                signature=query_name,
                group_size=prospective_size,
                source="policy",
                outcome="share" if decision.share else "solo",
                projected_z=decision.benefit,
                projected_shared_rate=decision.shared_rate,
                projected_unshared_rate=decision.unshared_rate,
            )
        if self.outlook is None:
            self._decision_cache[key] = decision.share
        return decision.share

    def choose_mode(
        self,
        query_name: str,
        prospective_size: int,
        processors: int,
        dop: int,
        partition_skew: float = 1.0,
    ) -> "ParallelProjection":
        """Share, parallelize, both, or neither — the four-way verdict.

        Evaluates the Section-4 rates for the prospective group (with
        the outlook's resource adjustment, when attached), then asks
        the outlook's :meth:`~repro.policies.resource_outlook
        .ResourceOutlook.share_vs_parallelize` projection to price all
        four arms: m solo serial queries, one shared group, m solo
        queries each at ``dop``-way intra-query parallelism, and the
        Section 8.1 several-shared-groups arrangement. Appends one
        audit record per verdict when an :class:`~repro.obs.audit
        .AuditLog` is attached (``outcome`` = the chosen mode).
        """
        try:
            spec, pivot = self.specs[query_name]
        except KeyError:
            raise PolicyError(
                f"no model spec for query {query_name!r}; "
                f"have {sorted(self.specs)}"
            ) from None
        outlook = self.outlook
        if outlook is not None:
            spec = outlook.adjusted_spec(
                query_name, spec, pivot, prospective_size
            )
        else:
            outlook = ResourceOutlook({}, costs=DEFAULT_COST_MODEL)
        advisor = ShareAdvisor(
            processors=processors,
            contention=self.contention,
            threshold=self.threshold,
        )
        group = [
            spec.relabeled(f"{query_name}#{i}")
            for i in range(prospective_size)
        ]
        decision = advisor.evaluate(group, pivot)
        projection = outlook.share_vs_parallelize(
            query_name,
            prospective_size,
            processors,
            dop,
            shared_rate=decision.shared_rate,
            unshared_rate=decision.unshared_rate,
            contention=self.contention,
            partition_skew=partition_skew,
            spec=spec,
            pivot_name=pivot,
        )
        if self.audit is not None:
            self.audit.append(
                query=query_name,
                signature=query_name,
                group_size=prospective_size,
                source="policy",
                outcome=projection.mode,
                projected_z=decision.benefit,
                projected_shared_rate=decision.shared_rate,
                projected_unshared_rate=decision.unshared_rate,
            )
        return projection
