"""The model-guided policy (Section 8): share only when Z(m, n) > 1.

Holds one profiled :class:`~repro.core.spec.QuerySpec` per query type
(obtained offline via :mod:`repro.profiling`, as in the paper's
Section 3.1 setup) and consults the analytical model on every arrival:
join the group only if sharing the prospective group beats independent
execution on this machine.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.contention import ContentionLike
from repro.core.decision import ShareAdvisor
from repro.core.spec import QuerySpec
from repro.errors import PolicyError
from repro.policies.base import SharingPolicy

__all__ = ["ModelGuidedPolicy"]


class ModelGuidedPolicy(SharingPolicy):
    """Decides via the Section-4 model on profiled query specs.

    Parameters
    ----------
    specs:
        ``query_name -> (QuerySpec, pivot operator name)`` from the
        profiler.
    contention:
        Optional hardware contention spec for the advisor.
    threshold:
        Minimum predicted Z to share. The default demands a 25%
        predicted win rather than any win: the Section-4 model prices
        rates at steady state but not the *batching delay* a runtime
        merge discipline imposes (an arriving query waits for the
        active group to drain before its batch starts), so marginal
        predicted wins lose in practice. The margin absorbs that
        unmodeled cost.
    """

    name = "model"

    def __init__(
        self,
        specs: Mapping[str, tuple[QuerySpec, str]],
        contention: ContentionLike = None,
        threshold: float = 1.25,
    ) -> None:
        if not specs:
            raise PolicyError("model-guided policy needs at least one spec")
        self.specs = dict(specs)
        self.contention = contention
        self.threshold = threshold
        self._decision_cache: dict[tuple[str, int, int], bool] = {}

    def should_share(self, query_name: str, prospective_size: int,
                     processors: int) -> bool:
        if prospective_size < 2:
            return False
        key = (query_name, prospective_size, processors)
        cached = self._decision_cache.get(key)
        if cached is not None:
            return cached
        try:
            spec, pivot = self.specs[query_name]
        except KeyError:
            raise PolicyError(
                f"no model spec for query {query_name!r}; "
                f"have {sorted(self.specs)}"
            ) from None
        advisor = ShareAdvisor(
            processors=processors,
            contention=self.contention,
            threshold=self.threshold,
        )
        group = [
            spec.relabeled(f"{query_name}#{i}")
            for i in range(prospective_size)
        ]
        decision = advisor.evaluate(group, pivot).share
        self._decision_cache[key] = decision
        return decision
