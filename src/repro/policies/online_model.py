"""Model-guided sharing with *online* parameter estimation.

The Section-8 policy, minus the offline profiling pass: every
completed group's stage busy times feed an
:class:`~repro.profiling.online.OnlineEstimator`, and decisions use
the current rolling fit. Until a query type's pivot has been observed
both shared and unshared (the identifiability requirement), the policy
spends a small *exploration budget* of shared groups to gather the
missing evidence — after which it behaves like the offline
model-guided policy, but adapts if the workload drifts.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.contention import ContentionLike
from repro.core.decision import ShareAdvisor
from repro.errors import PolicyError
from repro.policies.base import SharingPolicy
from repro.policies.resource_outlook import ResourceOutlook
from repro.profiling.online import OnlineEstimator
from repro.profiling.profiler import QueryProfile
from repro.tpch.queries import TpchQuery

__all__ = ["OnlineModelGuidedPolicy"]


class OnlineModelGuidedPolicy(SharingPolicy):
    """Learn the sharing model from live executions.

    Parameters
    ----------
    queries:
        ``query_name -> TpchQuery`` for every type the workload can
        submit (the estimator needs the plan tree and pivot).
    exploration_budget:
        Shared groups to allow per query type while its estimator
        cannot yet separate ``w`` from ``s``. Zero disables
        exploration (the policy then never shares a cold query type
        unless a prior is supplied).
    priors:
        Optional offline profiles seeding the estimators.
    threshold / contention:
        As in :class:`~repro.policies.model_guided.ModelGuidedPolicy`.
    outlook:
        Optional :class:`~repro.policies.resource_outlook.ResourceOutlook`;
        the live-estimated spec is adjusted with projected cold-scan
        I/O and spill pressure before each decision, exactly as in the
        offline policy.
    """

    name = "online-model"

    def __init__(
        self,
        queries: Mapping[str, TpchQuery],
        exploration_budget: int = 2,
        priors: Mapping[str, QueryProfile] | None = None,
        contention: ContentionLike = None,
        threshold: float = 1.25,
        window: int = 32,
        outlook: ResourceOutlook | None = None,
    ) -> None:
        if not queries:
            raise PolicyError("online policy needs at least one query type")
        if exploration_budget < 0:
            raise PolicyError(
                f"exploration_budget must be >= 0, got {exploration_budget}"
            )
        priors = priors or {}
        self.estimators: dict[str, OnlineEstimator] = {
            name: OnlineEstimator(
                query.plan,
                query.pivot,
                label=name,
                window=window,
                prior=priors.get(name),
            )
            for name, query in queries.items()
        }
        self._pivots = {name: q.pivot for name, q in queries.items()}
        self._exploration_left = {
            name: exploration_budget for name in queries
        }
        self.contention = contention
        self.threshold = threshold
        self.outlook = outlook
        self.exploration_shares = 0

    # ------------------------------------------------------------------

    def should_share(self, query_name: str, prospective_size: int,
                     processors: int) -> bool:
        if prospective_size < 2:
            return False
        estimator = self._estimator(query_name)
        if not estimator.ready():
            if self._exploration_left[query_name] > 0:
                self.exploration_shares += 1
                return True
            return False
        advisor = ShareAdvisor(
            processors=processors,
            contention=self.contention,
            threshold=self.threshold,
        )
        spec = estimator.current_spec()
        if self.outlook is not None:
            spec = self.outlook.adjusted_spec(
                query_name, spec, self._pivots[query_name], prospective_size
            )
        group = [
            spec.relabeled(f"{query_name}#{i}")
            for i in range(prospective_size)
        ]
        return advisor.evaluate(group, self._pivots[query_name]).share

    def observe_group(self, query_name: str, group_size: int, tasks) -> None:
        estimator = self.estimators.get(query_name)
        if estimator is None:
            return
        was_ready = estimator.ready()
        estimator.observe_group(group_size, tasks)
        if group_size > 1 and not was_ready:
            self._exploration_left[query_name] = max(
                0, self._exploration_left[query_name] - 1
            )

    # ------------------------------------------------------------------

    def _estimator(self, query_name: str) -> OnlineEstimator:
        try:
            return self.estimators[query_name]
        except KeyError:
            raise PolicyError(
                f"no estimator for query {query_name!r}; "
                f"have {sorted(self.estimators)}"
            ) from None
