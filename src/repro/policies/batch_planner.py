"""Offline (MQO-style) batch planning (Section 8.2).

The paper's runtime policy "has no way to know how many queries might
eventually come. ... Approaches that work with batches of queries
(offline), such as multiple query optimization, would not suffer this
shortcoming." This module is that approach: given the *whole* batch up
front, it makes globally informed grouping decisions —

1. queries are clustered by pivot signature (only identical operations
   can merge);
2. the machine is divided among clusters in proportion to their
   unshared work demand;
3. each cluster picks the Section 8.1 partitioning (k groups of g
   sharers) that maximizes its predicted rate on its processor share;
4. all resulting groups launch concurrently.

This is the offline-optimal flavor of always-share: it exploits every
beneficial merge but never creates a group the model rejects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core import metrics
from repro.core.contention import ContentionLike
from repro.core.decision import ShareAdvisor
from repro.core.spec import QuerySpec
from repro.engine.engine import Engine
from repro.engine.packet import GroupHandle
from repro.errors import PolicyError
from repro.tpch.queries import TpchQuery

__all__ = ["BatchPlan", "BatchPlanner"]


@dataclass(frozen=True)
class ClusterPlan:
    """Planned execution for one signature cluster."""

    query_name: str
    members: int
    group_size: int
    n_groups: int
    processor_share: float


@dataclass(frozen=True)
class BatchPlan:
    """The full batch arrangement, before execution."""

    clusters: tuple[ClusterPlan, ...]

    def total_groups(self) -> int:
        return sum(c.n_groups for c in self.clusters)

    def render(self) -> str:
        lines = ["batch plan:"]
        for c in self.clusters:
            lines.append(
                f"  {c.query_name}: {c.members} queries -> {c.n_groups} "
                f"group(s) of <= {c.group_size} on ~{c.processor_share:.1f} "
                "cpus"
            )
        return "\n".join(lines)


class BatchPlanner:
    """Plans and executes a known-in-advance batch of queries.

    Parameters
    ----------
    specs:
        ``query_name -> (QuerySpec, pivot op name)`` — profiled model
        specs for every query type the batch may contain.
    processors:
        Machine size the plan targets.
    contention / threshold:
        Advisor configuration (see :class:`ShareAdvisor`).
    """

    def __init__(
        self,
        specs: Mapping[str, tuple[QuerySpec, str]],
        processors: int,
        contention: ContentionLike = None,
        threshold: float = 1.0,
    ) -> None:
        if not specs:
            raise PolicyError("batch planner needs at least one spec")
        if processors < 1:
            raise PolicyError(f"processors must be >= 1, got {processors}")
        self.specs = dict(specs)
        self.processors = processors
        self.contention = contention
        self.threshold = threshold

    # ------------------------------------------------------------------

    def plan(self, queries: Sequence[TpchQuery]) -> BatchPlan:
        """Choose groupings for the batch (no execution)."""
        if not queries:
            raise PolicyError("cannot plan an empty batch")
        clusters = self._cluster(queries)

        # Processor shares proportional to unshared work demand.
        demands = {}
        for name, members in clusters.items():
            spec, _ = self._spec_for(name)
            demands[name] = len(members) * metrics.total_work(spec)
        total_demand = sum(demands.values())

        plans = []
        for name, members in clusters.items():
            spec, pivot = self._spec_for(name)
            share = self.processors * demands[name] / total_demand
            advisor = ShareAdvisor(
                processors=max(share, 1e-9),
                contention=self.contention,
                threshold=self.threshold,
            )
            partitioning = advisor.best_partitioning(
                spec, pivot, clients=len(members)
            )
            plans.append(
                ClusterPlan(
                    query_name=name,
                    members=len(members),
                    group_size=partitioning.group_size,
                    n_groups=partitioning.n_groups,
                    processor_share=share,
                )
            )
        return BatchPlan(clusters=tuple(plans))

    def execute(
        self,
        engine: Engine,
        queries: Sequence[TpchQuery],
        plan: Optional[BatchPlan] = None,
    ) -> list[GroupHandle]:
        """Launch the batch per plan; returns one handle per group.

        The caller drives ``engine.sim.run()`` afterwards.
        """
        plan = plan or self.plan(queries)
        clusters = self._cluster(queries)
        by_name = {c.query_name: c for c in plan.clusters}
        handles = []
        for name, members in clusters.items():
            cluster_plan = by_name[name]
            size = cluster_plan.group_size
            for start in range(0, len(members), size):
                chunk = members[start:start + size]
                pivot = chunk[0].pivot if len(chunk) > 1 else None
                handles.append(
                    engine.execute_group(
                        [q.plan for q in chunk],
                        pivot_op_id=pivot,
                        labels=[
                            f"batch/{name}#{start + i}"
                            for i in range(len(chunk))
                        ],
                    )
                )
        return handles

    # ------------------------------------------------------------------

    def _cluster(self, queries: Sequence[TpchQuery]) -> dict[str, list]:
        clusters: dict[str, list] = {}
        for query in queries:
            self._spec_for(query.name)  # validate early
            clusters.setdefault(query.name, []).append(query)
        return clusters

    def _spec_for(self, name: str) -> tuple[QuerySpec, str]:
        try:
            return self.specs[name]
        except KeyError:
            raise PolicyError(
                f"no model spec for query {name!r}; have {sorted(self.specs)}"
            ) from None
