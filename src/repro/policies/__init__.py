"""Work-sharing policies and the runtime coordinator (Section 8).

Three policies — :class:`AlwaysShare`, :class:`NeverShare`,
:class:`ModelGuidedPolicy` — plug into the
:class:`SharingCoordinator`, which batches same-operation queries into
merged groups the way Cordoba merges packets in stage queues.
"""

from repro.policies.always import AlwaysShare
from repro.policies.base import SharingPolicy
from repro.policies.batch_planner import BatchPlan, BatchPlanner
from repro.policies.coordinator import SharingCoordinator
from repro.policies.model_guided import ModelGuidedPolicy
from repro.policies.never import NeverShare
from repro.policies.online_model import OnlineModelGuidedPolicy
from repro.policies.resource_outlook import ResourceOutlook, ResourceProfile

__all__ = [
    "AlwaysShare",
    "NeverShare",
    "ModelGuidedPolicy",
    "OnlineModelGuidedPolicy",
    "ResourceOutlook",
    "ResourceProfile",
    "BatchPlan",
    "BatchPlanner",
    "SharingPolicy",
    "SharingCoordinator",
]
