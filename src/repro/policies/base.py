"""Sharing-policy interface (Section 8).

A policy answers one runtime question: *should this arriving query
wait to share with a forming group of the same operation, or start
executing independently right now?* The three policies the paper
compares — always-share, never-share, and model-guided — implement
this interface; :class:`~repro.policies.coordinator.SharingCoordinator`
consults it on every submission.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["SharingPolicy"]


class SharingPolicy(ABC):
    """Decides whether an arriving query joins a sharing group."""

    name: str = "policy"

    @abstractmethod
    def should_share(
        self,
        query_name: str,
        prospective_size: int,
        processors: int,
    ) -> bool:
        """True if the query should join/form a group.

        Parameters
        ----------
        query_name:
            The query type (e.g. ``"q1"``); policies that model
            individual queries key their specs on it.
        prospective_size:
            The size of the sharing group the query would belong to if
            it joins (current sharers + itself).
        processors:
            Hardware contexts of the machine.
        """

    def observe_group(self, query_name: str, group_size: int, tasks) -> None:
        """Feedback hook: one group of this query type completed.

        ``tasks`` are the group's stage tasks with their accumulated
        busy times. Static policies ignore this; learning policies
        (online estimation) fold it into their model.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
