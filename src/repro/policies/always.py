"""The always-share static policy: exploit every sharing opportunity.

This is the policy implicit in aggressive work-sharing designs; the
paper shows it collapses on many-core machines (Figure 6 right: 80
queries/min vs the model policy's 200) because it lets the pivot's
serialization grow unboundedly.
"""

from __future__ import annotations

from repro.policies.base import SharingPolicy

__all__ = ["AlwaysShare"]


class AlwaysShare(SharingPolicy):
    name = "always"

    def should_share(self, query_name: str, prospective_size: int,
                     processors: int) -> bool:
        return prospective_size >= 2
