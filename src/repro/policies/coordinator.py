"""Runtime sharing coordination (Sections 3.2 and 8.1).

Cordoba detects sharing at run time: "when a new packet arrives at a
stage's queue, the stage thread searches the queue for other packets
that request the same operation" and merges them. The
:class:`SharingCoordinator` reproduces that behaviour at query
granularity:

* **Same-instant arrivals merge.** Submissions are buffered and routed
  once per simulated instant, so a burst of identical queries (e.g.
  the members of a just-completed group resubmitting in a closed
  system) is evaluated as one prospective group — just as packets
  arriving together in a stage queue are merged together.
* **Busy signatures batch.** While groups of a signature are active,
  approved arrivals accumulate in a pending batch (the analogue of
  packets queueing at a busy stage). The batch launches as soon as any
  active group of the signature completes — pending work never waits
  for the whole signature to drain, which keeps multiple groups in
  flight concurrently (the Section 8.1 grouping optimization).
* **Policy-declined queries run solo** immediately, "though [they] may
  be joined later on by other queries" — their activity keeps the
  signature busy so a batch can form behind them.

The prospective group size offered to the policy counts active sharers
plus the waiting batch plus the simultaneous arrivals, approximating
Cordoba's ability to attach to in-flight queries via simultaneous
pipelining; the processors offered are those not claimed by active
queries of *other* signatures ("the model-guided policy dynamically
evaluates conditions at runtime", Section 8.2).

``max_group_size`` caps launched batches, splitting oversized pending
sets into multiple concurrent groups — trading sharing for parallelism
exactly as Section 8.1 proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.engine.engine import Engine
from repro.engine.packet import QueryHandle
from repro.errors import PolicyError
from repro.obs.audit import AuditLog
from repro.policies.base import SharingPolicy

__all__ = ["SharingCoordinator"]

# Attribute-absence sentinel for the Query/TpchQuery duck typing.
_MISSING = object()


@dataclass
class _Pending:
    query: object  # TpchQuery or repro.db Query — see _pivot_of
    label: str
    on_complete: Optional[Callable[[QueryHandle], None]]


@dataclass
class _Slot:
    """State for one pivot signature."""

    signature: str
    active_groups: set = field(default_factory=set)
    pending: list = field(default_factory=list)
    flush_scheduled: bool = False


class SharingCoordinator:
    """Routes arriving queries into sharing groups per policy."""

    def __init__(
        self,
        engine: Engine,
        policy: SharingPolicy,
        max_group_size: Optional[int] = None,
        audit: Optional[AuditLog] = None,
        attach_inflight: bool = False,
    ) -> None:
        if max_group_size is not None and max_group_size < 1:
            raise PolicyError(
                f"max_group_size must be >= 1, got {max_group_size}"
            )
        self.engine = engine
        self.policy = policy
        self.max_group_size = max_group_size
        # Simultaneous pipelining (Section 3.2): with ``attach_inflight``
        # an approved arrival at a *busy* signature launches immediately
        # instead of waiting in the pending batch — its scan attaches to
        # the in-flight elevator group mid-revolution through the
        # ScanShareManager (requires cooperative scans to actually share
        # work; without them it degrades to a concurrent solo run).
        self.attach_inflight = attach_inflight
        # Optional decision audit trail: every routed batch appends a
        # source="coordinator" record ("attach" when it joins a busy
        # signature's pending batch, "share"/"solo" otherwise).
        self.audit = audit
        self._slots: dict[str, _Slot] = {}
        self._active_members: dict[int, int] = {}
        self._group_names: dict[int, str] = {}
        self._group_sizes: dict[int, int] = {}
        self._arrivals: list[_Pending] = []
        self._route_scheduled = False
        # Decision accounting for experiments.
        self.shared_submissions = 0
        self.solo_submissions = 0
        self.launched_group_sizes: list[int] = []

    # ------------------------------------------------------------------

    def submit(
        self,
        query,
        label: str,
        on_complete: Optional[Callable[[QueryHandle], None]] = None,
    ) -> None:
        """Accept one arriving query; routed at the end of the instant."""
        self._arrivals.append(_Pending(query, label, on_complete))
        if not self._route_scheduled:
            self._route_scheduled = True
            self.engine.sim.call_soon(self._route_arrivals)

    def pending_count(self) -> int:
        return sum(len(slot.pending) for slot in self._slots.values())

    def inflight_count(self) -> int:
        """Members of launched groups that have not yet completed."""
        return sum(self._active_members.values())

    def queued_count(self) -> int:
        """Arrivals accepted but not yet running: the same-instant
        buffer plus every busy signature's pending batch."""
        return len(self._arrivals) + self.pending_count()

    def drain(self) -> None:
        """Route buffered arrivals immediately (for non-simulated use)."""
        if self._route_scheduled or self._arrivals:
            self._route_scheduled = False
            self._route_arrivals()

    # ------------------------------------------------------------------

    @staticmethod
    def _pivot_of(query) -> Optional[str]:
        """The sharing pivot's op_id — for both the tpch
        :class:`TpchQuery` (``pivot``) and the facade's
        :class:`~repro.db.builder.Query` (``pivot_op_id``)."""
        pivot = getattr(query, "pivot_op_id", _MISSING)
        if pivot is not _MISSING:
            return pivot
        return query.pivot

    @classmethod
    def _signature(cls, query) -> Optional[str]:
        pivot = cls._pivot_of(query)
        if pivot is None:
            return None
        return f"{pivot}:{query.plan.find(pivot).signature}"

    def _route_arrivals(self) -> None:
        self._route_scheduled = False
        arrivals, self._arrivals = self._arrivals, []
        by_signature: dict[str, list[_Pending]] = {}
        for entry in arrivals:
            signature = self._signature(entry.query)
            if signature is None:
                # No pivot — nothing to merge on; run solo under a
                # per-name slot so completion bookkeeping still works.
                signature = f"solo:{entry.query.name}"
                slot = self._slots.setdefault(
                    signature, _Slot(signature=signature)
                )
                self.solo_submissions += 1
                self._launch(slot, [entry])
                continue
            by_signature.setdefault(signature, []).append(entry)
        for signature, batch in by_signature.items():
            slot = self._slots.setdefault(signature,
                                          _Slot(signature=signature))
            self._route_batch(slot, batch)

    def _route_batch(self, slot: _Slot, batch: list[_Pending]) -> None:
        name = batch[0].query.name
        slot_active = sum(
            self._active_members.get(gid, 0) for gid in slot.active_groups
        )
        total_active = sum(self._active_members.values())
        effective_n = max(
            1, self.engine.sim.n_processors - (total_active - slot_active)
        )
        prospective = slot_active + len(slot.pending) + len(batch)
        busy = bool(slot.active_groups or slot.pending)

        verdict = self.policy.should_share(name, prospective, effective_n)
        if self.audit is not None:
            self.audit.append(
                query=name,
                signature=slot.signature,
                group_size=prospective,
                source="coordinator",
                outcome=("attach" if busy else "share") if verdict else "solo",
                decided_at=self.engine.sim.now,
            )
        if verdict:
            self.shared_submissions += len(batch)
            if busy and self.attach_inflight:
                # Launch now; the new scans attach to the in-flight
                # elevator group at its current page (mid-flight
                # simultaneous pipelining) instead of waiting for the
                # active group to drain.
                self._launch_capped(slot, batch)
            elif busy:
                slot.pending.extend(batch)
            else:
                self._launch_capped(slot, batch)
            return

        self.solo_submissions += len(batch)
        for entry in batch:
            self._launch(slot, [entry])

    # ------------------------------------------------------------------

    def _launch_capped(self, slot: _Slot, batch: list[_Pending]) -> None:
        cap = self.max_group_size or len(batch)
        for start in range(0, len(batch), cap):
            self._launch(slot, batch[start:start + cap])

    def _launch(self, slot: _Slot, batch: list[_Pending]) -> None:
        pivot = self._pivot_of(batch[0].query) if len(batch) > 1 else None
        group = self.engine.execute_group(
            [entry.query.plan for entry in batch],
            pivot_op_id=pivot,
            labels=[entry.label for entry in batch],
            on_complete=[
                self._wrap(slot, entry.on_complete) for entry in batch
            ],
        )
        slot.active_groups.add(group.group_id)
        self._active_members[group.group_id] = group.size
        self._group_names[group.group_id] = batch[0].query.name
        self._group_sizes[group.group_id] = group.size
        self.launched_group_sizes.append(group.size)

    def _wrap(
        self,
        slot: _Slot,
        client_callback: Optional[Callable[[QueryHandle], None]],
    ) -> Callable[[QueryHandle], None]:
        def on_query_done(handle: QueryHandle) -> None:
            remaining = self._active_members.get(handle.group_id, 0) - 1
            group_drained = remaining <= 0
            if group_drained:
                self._active_members.pop(handle.group_id, None)
                slot.active_groups.discard(handle.group_id)
                self._notify_policy(handle)
            else:
                self._active_members[handle.group_id] = remaining
            # The client's callback typically resubmits (closed system);
            # run it before scheduling the flush so same-instant
            # resubmissions can still join the departing batch.
            if client_callback is not None:
                client_callback(handle)
            if group_drained and not slot.flush_scheduled:
                slot.flush_scheduled = True
                self.engine.sim.call_soon(lambda: self._flush(slot))

        return on_query_done

    def _flush(self, slot: _Slot) -> None:
        slot.flush_scheduled = False
        if not slot.pending:
            return
        pending, slot.pending = slot.pending, []
        self._launch_capped(slot, pending)

    def _notify_policy(self, handle: QueryHandle) -> None:
        """Feed the completed group back to learning policies."""
        tasks = self.engine.group_tasks.get(handle.group_id)
        query_name = self._group_names.pop(handle.group_id, None)
        group_size = self._group_sizes.pop(handle.group_id, 0)
        if tasks is None or query_name is None:
            return
        self.policy.observe_group(query_name, group_size, tasks)
