"""The perf trajectory: versioned bench checkpoints and their diffs.

PR 6 started writing ``BENCH_6.json`` — one performance entry per
smoke bench — but a trajectory nobody can *compare* is a log, not a
gate. This module is the toolchain around those checkpoint files:

* :class:`BenchTrajectory` — the recording side (the benchmark
  suite's ``trajectory`` fixture builds one), writing a **versioned
  schema** (``repro-bench/1``): a host fingerprint (python version,
  implementation, platform — so diffs can warn when two checkpoints
  came from different machines) over per-bench entries
  ``{sim_time, wall_s, rows_per_s, counters}``;
* the **median-of-k rule**: a bench may record several wall-clock
  samples (pytest-benchmark rounds, or explicit re-runs); the entry's
  ``wall_s`` is their *median*, so one noisy round cannot fake a
  regression or an improvement;
* :func:`diff_trajectories` — the comparing side, driving the
  ``repro perf diff OLD NEW`` CLI: per-bench wall deltas judged
  against **per-bench noise tolerances** (recorded at bench time;
  small-wall benches are noisier and say so), simulated-time deltas
  flagged on *any* change (the simulator is deterministic — a sim
  delta is a behavior change, not noise), missing benches and schema
  mismatches as hard errors.

Exit-status contract of :meth:`DiffReport.exit_status` (what CI
scripts): ``0`` clean or report-only, ``1`` a regression past the
``--fail-over`` threshold, ``2`` structural errors (schema mismatch,
bench missing from the new checkpoint). The CI ``perf`` job runs the
diff report-only — report always, fail only past threshold.

Legacy note: PR 6's ``BENCH_6.json`` predates the envelope (a flat
``{bench: entry}`` object). The loader accepts it as schema version
``repro-bench/0`` with no host fingerprint, so the first cross-PR
diff works against the existing checkpoint.
"""

from __future__ import annotations

import json
import platform
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

__all__ = [
    "SCHEMA",
    "LEGACY_SCHEMA",
    "BenchEntry",
    "BenchTrajectory",
    "BenchSchemaError",
    "BenchDelta",
    "DiffReport",
    "diff_trajectories",
    "host_fingerprint",
]

SCHEMA = "repro-bench/1"
LEGACY_SCHEMA = "repro-bench/0"

# A bench that records no tolerance of its own is judged against this:
# generous enough for sub-100ms smoke benches on shared CI runners.
DEFAULT_TOLERANCE_PCT = 10.0

# Relative sim-time difference below which two floats are "the same
# simulation" (the simulator is deterministic; this only absorbs
# serialization round-off).
_SIM_RTOL = 1e-9


class BenchSchemaError(ValueError):
    """A checkpoint file is not a bench trajectory this tool knows."""


def host_fingerprint() -> dict:
    """The recording host, as much as a diff needs to warn about."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }


@dataclass(frozen=True)
class BenchEntry:
    """One bench's checkpoint entry.

    ``wall_s`` is the median of ``wall_samples`` when samples were
    recorded (the median-of-k rule), else the single measured wall.
    ``rows_per_s`` is present only for benches that declare a row
    count. ``tolerance_pct`` is this bench's own noise band.
    """

    sim_time: float
    wall_s: float
    counters: dict = field(default_factory=dict)
    rows_per_s: Optional[float] = None
    wall_samples: tuple = ()
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT

    def to_dict(self) -> dict:
        entry: dict = {
            "sim_time": self.sim_time,
            "wall_s": round(self.wall_s, 6),
            "counters": dict(self.counters),
            "tolerance_pct": self.tolerance_pct,
        }
        if self.rows_per_s is not None:
            entry["rows_per_s"] = round(self.rows_per_s, 3)
        if self.wall_samples:
            entry["wall_samples"] = [round(s, 6) for s in self.wall_samples]
        return entry

    @classmethod
    def from_dict(cls, raw: Mapping) -> "BenchEntry":
        if "sim_time" not in raw or "wall_s" not in raw:
            raise BenchSchemaError(
                f"bench entry missing sim_time/wall_s: {sorted(raw)}"
            )
        return cls(
            sim_time=float(raw["sim_time"]),
            wall_s=float(raw["wall_s"]),
            counters=dict(raw.get("counters", {})),
            rows_per_s=(
                float(raw["rows_per_s"]) if raw.get("rows_per_s") is not None
                else None
            ),
            wall_samples=tuple(raw.get("wall_samples", ())),
            tolerance_pct=float(raw.get("tolerance_pct", DEFAULT_TOLERANCE_PCT)),
        )


# Default sentinel for BenchTrajectory(host=...): "fingerprint this
# host". Distinct from None, which means "no fingerprint recorded"
# (legacy checkpoints) and must survive a load round-trip.
_THIS_HOST = object()


class BenchTrajectory:
    """Collects per-bench entries and round-trips checkpoint files."""

    def __init__(
        self,
        schema: str = SCHEMA,
        host=_THIS_HOST,
    ) -> None:
        self.schema = schema
        self.host: Optional[dict] = (
            host_fingerprint() if host is _THIS_HOST else host
        )
        self.entries: dict[str, BenchEntry] = {}

    def record(
        self,
        name: str,
        sim_time: float,
        wall_s: Optional[float] = None,
        counters: Optional[Mapping] = None,
        rows: Optional[int] = None,
        wall_samples: Optional[Sequence[float]] = None,
        tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
    ) -> BenchEntry:
        """Store one bench's entry (last write per name wins).

        Pass either ``wall_s`` (one measurement) or ``wall_samples``
        (k measurements; the entry's wall becomes their median —
        the re-run rule the diff relies on). ``rows`` derives the
        entry's throughput as ``rows / wall_s``.
        """
        samples = tuple(wall_samples or ())
        if samples:
            wall = statistics.median(samples)
        elif wall_s is not None:
            wall = wall_s
        else:
            raise ValueError(f"bench {name!r}: need wall_s or wall_samples")
        entry = BenchEntry(
            sim_time=sim_time,
            wall_s=wall,
            counters=dict(counters or {}),
            rows_per_s=(rows / wall) if rows and wall > 0 else None,
            wall_samples=samples,
            tolerance_pct=tolerance_pct,
        )
        self.entries[name] = entry
        return entry

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "host": self.host,
            "benches": {
                name: entry.to_dict()
                for name, entry in sorted(self.entries.items())
            },
        }

    def write(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def from_dict(cls, raw: Mapping) -> "BenchTrajectory":
        """Parse a checkpoint object (current or legacy schema)."""
        if not isinstance(raw, Mapping):
            raise BenchSchemaError(
                f"trajectory must be a JSON object, got {type(raw).__name__}"
            )
        if "schema" in raw:
            if raw["schema"] != SCHEMA:
                raise BenchSchemaError(
                    f"unknown bench schema {raw['schema']!r}; this tool "
                    f"reads {SCHEMA!r} (and legacy flat files as "
                    f"{LEGACY_SCHEMA!r})"
                )
            benches = raw.get("benches")
            if not isinstance(benches, Mapping):
                raise BenchSchemaError("trajectory has no 'benches' object")
            trajectory = cls(schema=SCHEMA, host=raw.get("host"))
        elif raw and all(
            isinstance(entry, Mapping) and "sim_time" in entry
            for entry in raw.values()
        ):
            # PR 6's envelope-less flat file: {bench: entry}.
            benches = raw
            trajectory = cls(schema=LEGACY_SCHEMA, host=None)
        else:
            raise BenchSchemaError(
                "not a bench trajectory: expected a 'schema' envelope or "
                "a legacy flat {bench: {sim_time, ...}} object"
            )
        for name, entry in benches.items():
            trajectory.entries[name] = BenchEntry.from_dict(entry)
        return trajectory

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BenchTrajectory":
        try:
            raw = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise BenchSchemaError(f"{path}: not JSON ({exc})") from exc
        return cls.from_dict(raw)


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BenchDelta:
    """One bench's old-vs-new comparison."""

    name: str
    old_wall_s: float
    new_wall_s: float
    wall_delta_pct: float
    tolerance_pct: float
    sim_changed: bool
    sim_delta_pct: float

    @property
    def regressed(self) -> bool:
        """Slower by more than this bench's noise band."""
        return self.wall_delta_pct > self.tolerance_pct

    @property
    def improved(self) -> bool:
        """Faster by more than this bench's noise band."""
        return self.wall_delta_pct < -self.tolerance_pct

    @property
    def verdict(self) -> str:
        if self.regressed:
            return "REGRESSED"
        if self.improved:
            return "improved"
        return "ok"


@dataclass(frozen=True)
class DiffReport:
    """Everything ``repro perf diff`` has to say about two checkpoints.

    ``fail_over_pct`` is the gate threshold (``None`` = report-only).
    A bench *fails the gate* when its wall regression exceeds both its
    own noise tolerance and the threshold — per-bench noise bands can
    only widen the gate, never tighten it below ``--fail-over``.
    """

    deltas: tuple
    missing: tuple
    added: tuple
    warnings: tuple
    fail_over_pct: Optional[float] = None

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def failures(self) -> list[BenchDelta]:
        """Regressions past the ``--fail-over`` gate (empty when
        report-only)."""
        if self.fail_over_pct is None:
            return []
        return [
            d
            for d in self.regressions
            if d.wall_delta_pct > self.fail_over_pct
        ]

    @property
    def sim_changes(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.sim_changed]

    def exit_status(self) -> int:
        """``2`` structural errors, ``1`` gate failures, else ``0``.

        Under a gate (``fail_over_pct`` set) a simulated-time change
        also fails: the simulator is deterministic, so a sim delta is
        a behavior change, not noise — no wall tolerance excuses it.
        """
        if self.missing:
            return 2
        if self.failures:
            return 1
        if self.fail_over_pct is not None and self.sim_changes:
            return 1
        return 0

    def render(self) -> str:
        lines = []
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        lines.append(
            f"{'bench':<24} {'old wall':>10} {'new wall':>10} "
            f"{'delta':>8} {'tol':>6}  verdict"
        )
        for d in sorted(self.deltas, key=lambda d: d.name):
            verdict = d.verdict
            if d.sim_changed:
                verdict += f" [sim {d.sim_delta_pct:+.2f}%]"
            lines.append(
                f"{d.name:<24} {d.old_wall_s * 1e3:>8.2f}ms "
                f"{d.new_wall_s * 1e3:>8.2f}ms {d.wall_delta_pct:>+7.1f}% "
                f"{d.tolerance_pct:>5.0f}%  {verdict}"
            )
        for name in self.added:
            lines.append(f"{name:<24} {'-':>10} {'-':>10} {'-':>8} {'-':>6}  new bench")
        for name in self.missing:
            lines.append(
                f"{name:<24} {'-':>10} {'-':>10} {'-':>8} {'-':>6}  "
                "MISSING from new checkpoint"
            )
        gate = (
            "report-only"
            if self.fail_over_pct is None
            else f"fail over +{self.fail_over_pct:g}%"
        )
        lines.append(
            f"{len(self.deltas)} compared, {len(self.regressions)} regressed, "
            f"{len(self.failures)} past gate ({gate}), "
            f"{len(self.sim_changes)} sim-changed, {len(self.added)} added, "
            f"{len(self.missing)} missing"
        )
        return "\n".join(lines)


def _median_wall(entry: BenchEntry) -> float:
    """The wall the diff judges: median of the recorded samples when
    present (defensive re-derivation of the record-time rule), else
    the stored wall."""
    if entry.wall_samples:
        return statistics.median(entry.wall_samples)
    return entry.wall_s


def diff_trajectories(
    old: BenchTrajectory,
    new: BenchTrajectory,
    fail_over_pct: Optional[float] = None,
) -> DiffReport:
    """Compare two checkpoints bench by bench.

    Wall-clock deltas are judged against the *wider* of the two
    entries' recorded noise tolerances; simulated-time deltas are
    flagged on any change at all (determinism makes them meaningful).
    Benches present only in ``new`` are reported as added; benches
    that *disappeared* are structural errors (exit status 2) — a
    renamed bench silently breaks the trajectory otherwise.
    """
    deltas = []
    for name, old_entry in sorted(old.entries.items()):
        new_entry = new.entries.get(name)
        if new_entry is None:
            continue
        old_wall = _median_wall(old_entry)
        new_wall = _median_wall(new_entry)
        wall_delta = (
            (new_wall - old_wall) / old_wall * 100.0 if old_wall > 0 else 0.0
        )
        sim_ref = max(abs(old_entry.sim_time), abs(new_entry.sim_time), 1e-12)
        sim_delta = (new_entry.sim_time - old_entry.sim_time) / sim_ref
        deltas.append(
            BenchDelta(
                name=name,
                old_wall_s=old_wall,
                new_wall_s=new_wall,
                wall_delta_pct=wall_delta,
                tolerance_pct=max(
                    old_entry.tolerance_pct, new_entry.tolerance_pct
                ),
                sim_changed=abs(sim_delta) > _SIM_RTOL,
                sim_delta_pct=sim_delta * 100.0,
            )
        )
    missing = tuple(sorted(set(old.entries) - set(new.entries)))
    added = tuple(sorted(set(new.entries) - set(old.entries)))
    warnings = []
    if old.schema != new.schema:
        warnings.append(
            f"schema versions differ ({old.schema} vs {new.schema})"
        )
    if old.host is not None and new.host is not None and old.host != new.host:
        changed = sorted(
            key
            for key in set(old.host) | set(new.host)
            if old.host.get(key) != new.host.get(key)
        )
        warnings.append(
            "cross-host comparison — wall-clock deltas are not "
            f"apples-to-apples (differs: {', '.join(changed)})"
        )
    elif old.host is None or new.host is None:
        warnings.append(
            "one checkpoint has no host fingerprint (legacy file); "
            "cannot rule out a cross-host comparison"
        )
    return DiffReport(
        deltas=tuple(deltas),
        missing=missing,
        added=added,
        warnings=tuple(warnings),
        fail_over_pct=fail_over_pct,
    )
