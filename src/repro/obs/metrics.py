"""One metric surface over the engine's scattered counters.

The reproduction accumulated four ad-hoc stats dataclasses —
``BufferStats``/``BufferSnapshot``, ``MemorySnapshot``,
``TableScanStats``, ``StageStats`` — plus the simulator's utilization,
each with its own field names and render format. Every consumer
(experiment drivers, benchmarks, ``QueryResult.render()``) re-derived
its own joins. :class:`MetricsRegistry` unifies them behind *named*
counters and gauges with a flat-dict snapshot:

* manual counters/gauges via :meth:`inc` / :meth:`set`;
* live gauges via :meth:`register` (a zero-argument callable read at
  snapshot time) and :meth:`register_group` (a callable returning a
  whole flat dict — used for dynamic families like per-table scans);
* :meth:`snapshot` returns one flat ``{name: number}`` dict with
  deterministic key order, :meth:`delta` diffs two snapshots, and
  :meth:`to_json` exports JSON.

Metric names are dot-separated paths, ``<subsystem>.<counter>`` with
an optional instance segment (``scan.<table>.<counter>``,
``stage.<op_id>.<counter>``). The full vocabulary is documented in
``docs/observability.md``; :meth:`MetricsRegistry.for_engine` is the
canonical wiring that registers every standard name an engine (or
:class:`~repro.db.session.Session`) can serve.
"""

from __future__ import annotations

import json
from typing import Callable, Mapping, Optional

__all__ = ["MetricsRegistry", "stall_breakdown", "render_stall_table"]

# The four stall categories of the paper's time decomposition, in
# report order: pure CPU work, I/O stall inside busy time, off-CPU
# drift-throttle pacing, and off-CPU queue blocking.
STALL_CATEGORIES = ("cpu", "io", "drift_throttle", "queue_block")


class MetricsRegistry:
    """Named counters and gauges with flat snapshots.

    Values are plain numbers. Registered callables are evaluated at
    :meth:`snapshot` time, so a registry wired over live components is
    always current and costs nothing between snapshots.
    """

    def __init__(self) -> None:
        self._values: dict[str, float] = {}
        self._sources: dict[str, Callable[[], float]] = {}
        self._groups: list[Callable[[], Mapping[str, float]]] = []

    # -- write side --------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> float:
        """Increment a manual counter; creates it at 0 first."""
        value = self._values.get(name, 0) + amount
        self._values[name] = value
        return value

    def set(self, name: str, value: float) -> None:
        """Set a manual gauge."""
        self._values[name] = value

    def register(self, name: str, source: Callable[[], float]) -> None:
        """Back ``name`` with a live callable read at snapshot time."""
        self._sources[name] = source

    def register_group(self, source: Callable[[], Mapping[str, float]]) -> None:
        """Back a whole *family* of names with one callable returning a
        flat dict — for dynamic instance sets (per-table, per-stage)."""
        self._groups.append(source)

    # -- read side ---------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """All current values as one flat dict, sorted by name."""
        merged: dict[str, float] = dict(self._values)
        for name, source in self._sources.items():
            merged[name] = source()
        for group in self._groups:
            merged.update(group())
        return dict(sorted(merged.items()))

    @staticmethod
    def delta(
        before: Mapping[str, float], after: Mapping[str, float]
    ) -> dict[str, float]:
        """``after - before`` for every key of ``after`` (missing keys
        in ``before`` count as 0), sorted by name."""
        return dict(
            sorted(
                (name, value - before.get(name, 0))
                for name, value in after.items()
            )
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Aligned ``name  value`` text, one metric per line."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics registered)"
        width = max(len(name) for name in snap)
        return "\n".join(
            f"{name:<{width}}  {value:.6g}" if isinstance(value, float)
            else f"{name:<{width}}  {value}"
            for name, value in snap.items()
        )

    # -- canonical wirings -------------------------------------------------

    @classmethod
    def for_engine(cls, engine, simulator=None) -> "MetricsRegistry":
        """The standard registry over an engine's live components.

        Registers the full documented vocabulary: ``sim.*`` from the
        simulator, ``buffer.*`` / ``memory.*`` / ``scan.<table>.*``
        from whichever storage layers the engine wires (absent layers
        contribute nothing), ``stage.<op_id>.*`` and the ``stall.*``
        totals from the task ledger.
        """
        registry = cls()
        sim = simulator if simulator is not None else engine.sim
        registry.register("sim.now", lambda: sim.now)
        registry.register("sim.busy_time", lambda: sim.total_busy_time)
        registry.register("sim.utilization", sim.utilization)
        registry.register("sim.tasks", lambda: len(sim.tasks))
        registry.register("sim.completions", lambda: len(sim.completions))

        pool = getattr(engine, "pool", None)
        if pool is not None:
            registry.register_group(lambda p=pool: _buffer_family(p))
            registry.register_group(lambda p=pool: _spill_family(p))
        memory = getattr(engine, "memory", None)
        if memory is not None:
            registry.register_group(lambda m=memory: _memory_family(m))
        scans = getattr(engine, "scan_manager", None)
        if scans is not None:
            registry.register_group(lambda s=scans: _scan_family(s))
        registry.register_group(lambda s=sim: _stage_family(s))
        return registry


def _buffer_family(pool) -> dict[str, float]:
    snap = pool.snapshot()
    return {
        "buffer.capacity": snap.capacity,
        "buffer.resident": snap.resident,
        "buffer.pinned": snap.pinned,
        "buffer.hits": snap.hits,
        "buffer.misses": snap.misses,
        "buffer.hit_rate": snap.hit_rate,
        "buffer.evictions": snap.evictions,
        "buffer.spill_pages_written": snap.spill_pages_written,
        "buffer.spill_pages_read": snap.spill_pages_read,
        "buffer.spill_prefetch_issued": snap.spill_prefetch_issued,
        "buffer.spill_read_stall": snap.spill_read_stall,
        "buffer.spill_read_overlapped": snap.spill_read_overlapped,
    }


def _spill_family(pool) -> dict[str, float]:
    """Spill read-back as a first-class family.

    The counters live on :class:`BufferStats` (every spill file writes
    through the pool), but burying them under ``buffer.spill_*`` hid
    the one decomposition the external operators care about — how much
    spill read cost stalled vs overlapped with CPU. The ``spill.*``
    names are the documented surface; the ``buffer.spill_*`` aliases
    remain for snapshot compatibility.
    """
    snap = pool.snapshot()
    return {
        "spill.pages_written": snap.spill_pages_written,
        "spill.pages_read": snap.spill_pages_read,
        "spill.prefetch_issued": snap.spill_prefetch_issued,
        "spill.read_stall": snap.spill_read_stall,
        "spill.read_overlapped": snap.spill_read_overlapped,
    }


def _memory_family(memory) -> dict[str, float]:
    snap = memory.snapshot()
    return {
        "memory.work_mem": snap.work_mem,
        "memory.reserved": snap.reserved,
        "memory.in_use": snap.in_use,
        "memory.high_water": snap.high_water,
        "memory.overcommits": snap.overcommits,
    }


def _scan_family(scans) -> dict[str, float]:
    family: dict[str, float] = {}
    for stats in scans.snapshot():
        prefix = f"scan.{stats.table}"
        family.update(
            {
                f"{prefix}.pages_served": stats.pages_served,
                f"{prefix}.physical_reads": stats.physical_reads,
                f"{prefix}.attaches": stats.attaches,
                f"{prefix}.max_attach_depth": stats.max_attach_depth,
                f"{prefix}.prefetch_issued": stats.prefetch_issued,
                f"{prefix}.prefetch_wasted": stats.prefetch_wasted,
                f"{prefix}.io_stall": stats.io_stall_cost,
                f"{prefix}.io_overlapped": stats.io_overlapped_cost,
                f"{prefix}.max_lag": stats.max_lag,
                f"{prefix}.throttle_stall": stats.throttle_stall_cost,
                f"{prefix}.splits": stats.splits,
                f"{prefix}.merges": stats.merges,
                f"{prefix}.groups": stats.groups,
            }
        )
    return family


def _stage_family(sim) -> dict[str, float]:
    # Imported here to keep repro.obs importable without the engine
    # layer (the tracer is usable on a bare simulator).
    from repro.engine.stats import stage_report

    family: dict[str, float] = {}
    totals = {category: 0.0 for category in STALL_CATEGORIES}
    report = stage_report(sim)
    for stats in report.stages:
        prefix = f"stage.{stats.op_id}"
        family[f"{prefix}.instances"] = stats.instances
        family[f"{prefix}.busy"] = stats.busy_time
        family[f"{prefix}.io"] = stats.io_time
        family[f"{prefix}.drift_throttle"] = stats.drift_throttle
        family[f"{prefix}.queue_block"] = stats.queue_block
        totals["cpu"] += stats.busy_time - stats.io_time
        totals["io"] += stats.io_time
        totals["drift_throttle"] += stats.drift_throttle
        totals["queue_block"] += stats.queue_block
    for category, value in totals.items():
        family[f"stall.{category}"] = value
    return family


def stall_breakdown(snapshot: Mapping[str, float]) -> dict[str, float]:
    """The four ``stall.*`` totals of a flat snapshot, in the fixed
    category order ``cpu, io, drift_throttle, queue_block``."""
    return {
        category: snapshot.get(f"stall.{category}", 0.0)
        for category in STALL_CATEGORIES
    }


def render_stall_table(snapshot: Mapping[str, float]) -> str:
    """The canonical stall-breakdown table over a flat snapshot.

    One fixed format for every consumer (``QueryResult.render()``, the
    experiment drivers, the benchmarks) — replacing the hand-rolled
    per-report variants. Categories in fixed order; the share column
    is of the four categories' total (CPU work plus all stall kinds).

    When the snapshot carries the ``spill.*`` family (registries wired
    by :meth:`MetricsRegistry.for_engine` over an engine with a buffer
    pool), a footer decomposes the spill read-back cost into its
    stalled vs prefetch-overlapped parts — the per-cause detail behind
    the ``io`` row that external sorts and hash joins care about.
    """
    breakdown = stall_breakdown(snapshot)
    total = sum(breakdown.values())
    lines = [f"{'category':>16}  {'time':>12}  share"]
    for category, value in breakdown.items():
        share = value / total if total else 0.0
        bar = "#" * round(share * 30)
        lines.append(
            f"{category:>16}  {value:>12.1f}  {share:>6.1%} {bar}"
        )
    if any(name.startswith("spill.") for name in snapshot):
        stalled = snapshot.get("spill.read_stall", 0.0)
        overlapped = snapshot.get("spill.read_overlapped", 0.0)
        read_total = stalled + overlapped
        overlap_share = overlapped / read_total if read_total else 0.0
        lines.append(
            f"{'spill read-back':>16}  {read_total:>12.1f}  "
            f"{overlap_share:>6.1%} overlapped "
            f"({snapshot.get('spill.pages_written', 0):.0f}w/"
            f"{snapshot.get('spill.pages_read', 0):.0f}r pages)"
        )
    return "\n".join(lines)
