"""Observability: flight-recorder tracing, unified metrics, and the
sharing advisor's decision audit trail.

Three opt-in instruments over the reproduction, all zero-cost when
detached:

* :mod:`repro.obs.trace` — :class:`Tracer`, a deterministic event
  recorder the simulator and storage components feed, exportable as
  Chrome/Perfetto ``trace_event`` JSON or a text timeline;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, one named
  counter/gauge surface over the scattered stats dataclasses, with
  ``snapshot()``/``delta()`` and flat-dict JSON export;
* :mod:`repro.obs.audit` — :class:`AuditLog`/:class:`AuditRecord`,
  the projected-vs-measured ledger of every share/solo routing
  decision.

Enable all three through the facade with
``RuntimeConfig.with_(trace=True)`` (see ``docs/observability.md``),
or attach a tracer to a hand-wired engine via :func:`attach_tracer`.
"""

from repro.obs.audit import AuditLog, AuditRecord
from repro.obs.metrics import MetricsRegistry, stall_breakdown
from repro.obs.trace import (
    TID_MEMORY,
    TID_POOL,
    TID_QUEUES,
    TID_SCANS,
    TID_SPILL,
    TID_TASKS,
    TraceEvent,
    Tracer,
    attach_tracer,
    validate_chrome_trace,
)

__all__ = [
    "Tracer",
    "TraceEvent",
    "attach_tracer",
    "validate_chrome_trace",
    "MetricsRegistry",
    "stall_breakdown",
    "AuditLog",
    "AuditRecord",
    "TID_TASKS",
    "TID_QUEUES",
    "TID_POOL",
    "TID_SCANS",
    "TID_SPILL",
    "TID_MEMORY",
]
