"""Observability: flight-recorder tracing, unified metrics, and the
sharing advisor's decision audit trail.

Three opt-in instruments over the reproduction, all zero-cost when
detached:

* :mod:`repro.obs.trace` — :class:`Tracer`, a deterministic event
  recorder the simulator and storage components feed, exportable as
  Chrome/Perfetto ``trace_event`` JSON or a text timeline;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, one named
  counter/gauge surface over the scattered stats dataclasses, with
  ``snapshot()``/``delta()`` and flat-dict JSON export;
* :mod:`repro.obs.audit` — :class:`AuditLog`/:class:`AuditRecord`,
  the projected-vs-measured ledger of every share/solo routing
  decision;
* :mod:`repro.obs.perf` — :class:`WallProfiler`, the *wall-clock*
  counterpart of the tracer: per-operator host time, rows/s, and the
  simulated-work vs harness-overhead decomposition, exportable as a
  hotspot table, collapsed stacks, or speedscope/Perfetto JSON;
* :mod:`repro.obs.bench` — :class:`BenchTrajectory` and
  :func:`diff_trajectories`, the versioned ``BENCH_*.json``
  checkpoint format and the regression gate behind
  ``repro perf diff``.

Enable the simulated-time instruments through the facade with
``RuntimeConfig.with_(trace=True)`` and the wall-clock profiler with
``RuntimeConfig.with_(perf=True)`` (see ``docs/observability.md``),
or attach to a hand-wired engine via :func:`attach_tracer` /
:func:`attach_profiler`.
"""

from repro.obs.audit import AuditLog, AuditRecord
from repro.obs.bench import (
    BenchTrajectory,
    DiffReport,
    diff_trajectories,
)
from repro.obs.metrics import MetricsRegistry, stall_breakdown
from repro.obs.perf import OpProfile, WallProfiler, attach_profiler
from repro.obs.trace import (
    TID_MEMORY,
    TID_POOL,
    TID_QUEUES,
    TID_SCANS,
    TID_SPILL,
    TID_TASKS,
    TraceEvent,
    Tracer,
    attach_tracer,
    validate_chrome_trace,
)

__all__ = [
    "Tracer",
    "TraceEvent",
    "attach_tracer",
    "validate_chrome_trace",
    "MetricsRegistry",
    "stall_breakdown",
    "AuditLog",
    "AuditRecord",
    "WallProfiler",
    "OpProfile",
    "attach_profiler",
    "BenchTrajectory",
    "DiffReport",
    "diff_trajectories",
    "TID_TASKS",
    "TID_QUEUES",
    "TID_POOL",
    "TID_SCANS",
    "TID_SPILL",
    "TID_MEMORY",
]
