"""The decision audit trail: what the advisor projected, and what
actually happened.

The paper's model-guided policies (Section 4) *project* shared and
unshared completion rates from profiled specs and choose by Z-score;
our reproduction made those choices silently, so there was no way to
ask the one question a self-tuning system needs answered: *how wrong
were the projections?* Every routing decision — ``Session.advise``,
``Session.run_all``'s grouping, a ``ModelGuidedPolicy`` verdict, a
``SharingCoordinator`` launch — now appends an :class:`AuditRecord`
capturing the decision *inputs* (signature, group size, projected
rates, Z-score, projected extra I/O, spill pages, drift discount) and
its *outcome* (share / solo / attach). After the run, the session
joins each record with what the simulator measured — group latency,
completion rate, physical reads — so :attr:`AuditRecord
.projection_error` quantifies the gap per decision and
:meth:`AuditLog.mean_abs_error` the gap per workload. ``fig_audit``
plots this distribution over the fig_mem/fig_drift sweeps.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Optional

__all__ = ["AuditRecord", "AuditLog"]

OUTCOMES = ("share", "solo", "attach", "parallel", "both", "queue", "shed")


@dataclass
class AuditRecord:
    """One routing decision: projections at decision time, and (once
    joined) the measurement of the arm that was actually run.

    ``source`` names who decided: ``"advisor"`` (the session's
    built-in ShareAdvisor), ``"policy"`` (an attached policy object),
    ``"coordinator"`` (the online SharingCoordinator), ``"forced"``
    (the submitter pinned ``share=``), or ``"solo"`` (a singleton
    batch with nothing to share with). ``outcome`` is ``"share"``,
    ``"solo"``, ``"attach"`` (joined a group already in flight),
    ``"parallel"`` (ran solo with intra-query parallelism), ``"both"``
    (split into several shared groups — the Section 8.1
    share-and-parallelize arrangement), ``"queue"`` (admission control
    held the arrival for a free slot), or ``"shed"`` (admission
    control rejected the arrival outright; the open-system server
    records every shed here — ``source="server"``).

    Projection fields are in the model's units: rates are completion
    rates (queries per cost unit, the paper's X_shared/X_unshared),
    ``projected_io_extra`` is the per-sibling extra pivot work the
    ResourceOutlook charged (negative = projected I/O *savings*),
    ``projected_spill_pages`` the broker's projected spill for the
    unshared plan, ``projected_drift_share`` the drift-bound discount
    factor on shared-scan savings.

    Measurement fields stay ``None`` until the session joins them
    after ``run_all``: ``measured_latency`` is the wall of the
    record's launch group (first submit to last finish, simulated
    time), ``measured_rate`` is ``group_size / measured_latency``,
    and ``measured_physical_reads`` is the batch-level delta of
    pool misses plus elevator physical reads (exact when the batch
    holds one decision, apportioned evenly otherwise).
    """

    seq: int
    query: str
    signature: str
    group_size: int
    source: str
    outcome: str
    decided_at: float = 0.0
    projected_z: Optional[float] = None
    projected_shared_rate: Optional[float] = None
    projected_unshared_rate: Optional[float] = None
    projected_io_extra: Optional[float] = None
    projected_spill_pages: Optional[int] = None
    projected_drift_share: Optional[float] = None
    measured_latency: Optional[float] = None
    measured_rate: Optional[float] = None
    measured_physical_reads: Optional[float] = None

    @property
    def projected_rate(self) -> Optional[float]:
        """The projected completion rate of the arm that was chosen."""
        if self.outcome in ("share", "attach", "both"):
            return self.projected_shared_rate
        return self.projected_unshared_rate

    @property
    def joined(self) -> bool:
        return self.measured_latency is not None

    @property
    def projection_error(self) -> Optional[float]:
        """Relative error of the chosen arm's projected rate vs the
        measured rate: ``(projected - measured) / measured``.

        Positive = the model was optimistic (projected faster than
        reality), negative = pessimistic. ``None`` until the record is
        joined or when the decision carried no rate projection.
        """
        if self.projected_rate is None or not self.measured_rate:
            return None
        return (self.projected_rate - self.measured_rate) / self.measured_rate

    def join(
        self,
        latency: float,
        physical_reads: Optional[float] = None,
    ) -> None:
        """Attach the measured outcome of this decision's launch."""
        self.measured_latency = latency
        self.measured_rate = self.group_size / latency if latency > 0 else None
        self.measured_physical_reads = physical_reads

    def to_dict(self) -> dict:
        record = asdict(self)
        record["projected_rate"] = self.projected_rate
        record["projection_error"] = self.projection_error
        return record


class AuditLog:
    """Append-only sequence of :class:`AuditRecord`.

    One log per session (``Session.audit_log()``); policies and
    coordinators can share it or keep their own. Appends assign
    monotonically increasing ``seq`` numbers, so interleaved deciders
    stay ordered.
    """

    def __init__(self) -> None:
        self._records: list[AuditRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> tuple[AuditRecord, ...]:
        return tuple(self._records)

    def append(self, **fields_) -> AuditRecord:
        """Create and store a record; ``seq`` is assigned here."""
        outcome = fields_.get("outcome")
        if outcome not in OUTCOMES:
            raise ValueError(
                f"outcome must be one of {OUTCOMES}, got {outcome!r}"
            )
        record = AuditRecord(seq=len(self._records), **fields_)
        self._records.append(record)
        return record

    def for_query(self, name: str) -> tuple[AuditRecord, ...]:
        return tuple(r for r in self._records if r.query == name)

    def joined_records(self) -> tuple[AuditRecord, ...]:
        """Records whose measurement has been joined."""
        return tuple(r for r in self._records if r.joined)

    def mean_abs_error(self) -> Optional[float]:
        """Mean absolute projection error over joined records that
        carry a rate projection; ``None`` when there are none."""
        errors = [
            abs(r.projection_error)
            for r in self._records
            if r.projection_error is not None
        ]
        return sum(errors) / len(errors) if errors else None

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            [r.to_dict() for r in self._records], indent=indent, sort_keys=True
        )

    def render(self, records: Optional[Iterable[AuditRecord]] = None) -> str:
        """Aligned table of decisions, one line per record."""
        rows = list(self._records if records is None else records)
        if not rows:
            return "(no audited decisions)"
        lines = [
            f"{'seq':>4}  {'query':<18} {'m':>3}  {'source':<11} "
            f"{'outcome':<7} {'proj Z':>8}  {'proj rate':>10}  "
            f"{'meas rate':>10}  {'error':>8}"
        ]
        for r in rows:
            z = f"{r.projected_z:.3f}" if r.projected_z is not None else "-"
            proj = (
                f"{r.projected_rate:.3e}" if r.projected_rate is not None else "-"
            )
            meas = (
                f"{r.measured_rate:.3e}" if r.measured_rate is not None else "-"
            )
            err = (
                f"{r.projection_error:+.1%}"
                if r.projection_error is not None
                else "-"
            )
            lines.append(
                f"{r.seq:>4}  {r.query:<18} {r.group_size:>3}  "
                f"{r.source:<11} {r.outcome:<7} {z:>8}  {proj:>10}  "
                f"{meas:>10}  {err:>8}"
            )
        return "\n".join(lines)
