"""Wall-clock operator profiling: where does *host* time go?

Everything else in :mod:`repro.obs` observes the **simulated** clock;
this module observes the other one. The reproduction's engine moves
Python row tuples through per-row operator loops, and at TPC-H scale
the harness itself is the bottleneck — the ROADMAP's "raw speed" item
cannot vectorize a hot path it cannot see. :class:`WallProfiler` is
that instrument:

* the :class:`~repro.sim.simulator.Simulator` drives it at every
  stage *slice* boundary — each ``gen.send`` that resumes an operator
  generator is timed with the host clock and attributed to the
  operator (task names follow the engine's ``prefix/op_id``
  convention, so slices aggregate per ``op_id``);
* :class:`~repro.engine.stage.BatchEmitter` feeds per-operator row
  counts at page-flush boundaries, giving each operator a measured
  rows/s;
* :meth:`WallProfiler.totals` decomposes a run's wall time into
  **work** (host seconds spent inside operator generators — the
  simulated work itself) and **harness overhead** (everything else
  inside ``Simulator.run``: the event heap, dispatch, queue
  bookkeeping, and the profiler's own clock reads), so "how much of
  tier-1 is interpreter tax" is finally a number.

Cost discipline mirrors the PR-6 tracer exactly: attachment is by
assignment (``sim.perf = profiler``; the default is ``None``), every
hook site is one pointer test, and a detached profiler costs nothing
and allocates nothing. Unlike the tracer, a profiler's output is
**not** deterministic — it reads the host clock — but it never feeds
back into the simulation: simulated time and answers are bit-identical
with profiling on, off, or detached.

Exports: :meth:`WallProfiler.hotspot_table` (sorted text table),
:meth:`WallProfiler.collapsed` (collapsed-stack text for flamegraph
tooling), and :meth:`WallProfiler.to_chrome` (a ``trace_event`` JSON
object loadable in speedscope and Perfetto, schema-checked by the same
:func:`~repro.obs.trace.validate_chrome_trace` the tracer uses). The
``repro perf`` CLI command wraps all three.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "OpProfile",
    "WallProfiler",
    "attach_profiler",
]

# Microseconds per second: trace_event ``ts``/``dur`` are in usec.
_USEC = 1_000_000.0


@dataclass(frozen=True)
class OpProfile:
    """One operator's aggregated wall-clock profile.

    ``wall_s`` is host seconds spent inside the operator's generator
    across all its slices; ``calls`` counts the slices (generator
    resumptions); ``rows`` is what its emitter flushed downstream
    (0 for operators that emit through other channels, e.g. sinks).
    """

    op: str
    calls: int
    wall_s: float
    rows: int
    share: float

    @property
    def rows_per_s(self) -> float:
        """Measured emit throughput (0 when nothing was emitted or
        the operator took no measurable time)."""
        if not self.rows or self.wall_s <= 0:
            return 0.0
        return self.rows / self.wall_s


class WallProfiler:
    """Aggregating wall-clock recorder of operator slices.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonic host seconds;
        defaults to :func:`time.perf_counter`. Tests inject a fake
        counter to make profiles deterministic.

    The emit API has three sites, each guarded by one ``is not None``
    check at its caller:

    * :meth:`record_slice` — the simulator, around every
      ``gen.send`` (one *call* per slice);
    * :meth:`record_run` — the simulator, around :meth:`run`
      (accumulates the total the decomposition is measured against);
    * :meth:`add_rows` — the stage emitter, per flushed page.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        # task name -> [calls, wall_s]; mutated on the hot path, so a
        # plain list beats a dataclass here.
        self._slices: dict[str, list] = {}
        self._rows: dict[str, int] = {}
        self.run_wall_s = 0.0
        self.runs = 0

    def __len__(self) -> int:
        return len(self._slices)

    # -- emit (hot path) ---------------------------------------------------

    def record_slice(self, task_name: str, wall_s: float) -> None:
        """Attribute one generator slice to its task."""
        entry = self._slices.get(task_name)
        if entry is None:
            self._slices[task_name] = [1, wall_s]
        else:
            entry[0] += 1
            entry[1] += wall_s

    def record_run(self, wall_s: float) -> None:
        """Accumulate one ``Simulator.run`` call's total wall time."""
        self.run_wall_s += wall_s
        self.runs += 1

    def add_rows(self, op: str, rows: int) -> None:
        """Attribute emitted rows to an operator (page-flush hook)."""
        self._rows[op] = self._rows.get(op, 0) + rows

    # -- aggregation -------------------------------------------------------

    @staticmethod
    def _op_of(task_name: str) -> str:
        """Engine tasks are named ``prefix/op_id``; aggregate on the
        op_id so the same operator across queries (or a shared pivot
        under its group prefix) lands in one bucket. Bare task names
        (hand-spawned simulations) aggregate as themselves."""
        return task_name.rsplit("/", 1)[-1]

    def profile(self) -> list[OpProfile]:
        """Per-operator profiles, hottest first.

        Rows recorded for an operator that never sliced (possible only
        if a caller feeds :meth:`add_rows` by hand) still appear, with
        zero calls and zero wall.
        """
        calls: dict[str, int] = {}
        wall: dict[str, float] = {}
        for task_name, (n, seconds) in self._slices.items():
            op = self._op_of(task_name)
            calls[op] = calls.get(op, 0) + n
            wall[op] = wall.get(op, 0.0) + seconds
        for op in self._rows:
            calls.setdefault(op, 0)
            wall.setdefault(op, 0.0)
        total = sum(wall.values())
        profiles = [
            OpProfile(
                op=op,
                calls=calls[op],
                wall_s=wall[op],
                rows=self._rows.get(op, 0),
                share=(wall[op] / total) if total else 0.0,
            )
            for op in wall
        ]
        profiles.sort(key=lambda p: (-p.wall_s, p.op))
        return profiles

    def totals(self) -> dict:
        """The run's work-vs-harness decomposition as one flat dict.

        ``work_s`` is the sum of every operator slice; ``overhead_s``
        is what remains of ``run_wall_s`` (the scheduler's heap,
        dispatch, queue bookkeeping, and the profiler's clock reads);
        ``overhead_share`` is of ``run_wall_s``. Slices recorded
        outside any ``run`` call (none, in normal use) can push
        ``work_s`` past ``run_wall_s``; the overhead is floored at 0.
        """
        work = sum(entry[1] for entry in self._slices.values())
        overhead = max(self.run_wall_s - work, 0.0)
        total = self.run_wall_s if self.run_wall_s > 0 else work
        return {
            "runs": self.runs,
            "run_wall_s": self.run_wall_s,
            "work_s": work,
            "overhead_s": overhead,
            "overhead_share": (overhead / total) if total else 0.0,
            "slices": sum(entry[0] for entry in self._slices.values()),
            "rows": sum(self._rows.values()),
        }

    # -- exports -----------------------------------------------------------

    def hotspot_table(self, limit: Optional[int] = None) -> str:
        """The sorted hotspot table, plus the decomposition footer."""
        profiles = self.profile()
        shown = profiles if limit is None else profiles[:limit]
        lines = [
            f"{'operator':<20} {'calls':>8} {'rows':>10} "
            f"{'wall ms':>10} {'share':>7} {'rows/s':>12}"
        ]
        for p in shown:
            rate = f"{p.rows_per_s:,.0f}" if p.rows else "-"
            lines.append(
                f"{p.op:<20} {p.calls:>8} {p.rows:>10} "
                f"{p.wall_s * 1e3:>10.3f} {p.share:>6.1%} {rate:>12}"
            )
        if limit is not None and len(profiles) > limit:
            lines.append(f"... {len(profiles) - limit} more operators")
        t = self.totals()
        lines.append(
            f"{'work (operators)':<20} {t['work_s'] * 1e3:>31.3f} ms"
        )
        lines.append(
            f"{'harness overhead':<20} {t['overhead_s'] * 1e3:>31.3f} ms"
            f"  ({t['overhead_share']:.1%} of run)"
        )
        lines.append(
            f"{'run total':<20} {t['run_wall_s'] * 1e3:>31.3f} ms"
            f"  over {t['runs']} run(s), {t['slices']} slices"
        )
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Collapsed-stack text (``frame;frame count`` per line, counts
        in integer microseconds) for flamegraph.pl / speedscope /
        inferno. Operators fold under ``run;work``; the scheduler's
        residual folds under ``run;harness``."""
        lines = []
        for p in self.profile():
            usec = round(p.wall_s * _USEC)
            if usec:
                lines.append(f"run;work;{p.op} {usec}")
        overhead = round(self.totals()["overhead_s"] * _USEC)
        if overhead:
            lines.append(f"run;harness {overhead}")
        return "\n".join(lines)

    def to_chrome(self) -> dict:
        """A ``trace_event`` JSON object of the aggregated profile.

        Not a timeline (the profiler aggregates; it does not keep
        per-slice timestamps): operators tile lane ``hotspots`` in
        hottest-first order and the work/harness decomposition tiles
        lane ``decomposition``, so Perfetto and speedscope render the
        profile as proportional bars. Validates against
        :func:`~repro.obs.trace.validate_chrome_trace`.
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro-wall-clock"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "hotspots"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": "decomposition"},
            },
        ]
        cursor = 0.0
        for p in self.profile():
            dur = p.wall_s * _USEC
            events.append(
                {
                    "name": p.op,
                    "cat": "wall",
                    "ph": "X",
                    "ts": cursor,
                    "dur": dur,
                    "pid": 1,
                    "tid": 0,
                    "args": {"calls": p.calls, "rows": p.rows},
                }
            )
            cursor += dur
        t = self.totals()
        cursor = 0.0
        for name, seconds in (
            ("work", t["work_s"]),
            ("harness", t["overhead_s"]),
        ):
            dur = seconds * _USEC
            events.append(
                {
                    "name": name,
                    "cat": "wall",
                    "ph": "X",
                    "ts": cursor,
                    "dur": dur,
                    "pid": 1,
                    "tid": 1,
                }
            )
            cursor += dur
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize :meth:`to_chrome` (stable key order; values are
        wall-clock measurements, so runs differ — unlike the tracer)."""
        return json.dumps(self.to_chrome(), indent=indent, sort_keys=True)

    def write(self, path) -> int:
        """Write the Chrome JSON to ``path``; returns the operator
        count (the mirror of :meth:`Tracer.write`'s event count)."""
        profiles = self.profile()
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=None))
        return len(profiles)


def attach_profiler(
    sim,
    engine=None,
    profiler: Optional[WallProfiler] = None,
    clock: Optional[Callable[[], float]] = None,
) -> WallProfiler:
    """Wire one wall-clock profiler through a simulator and engine.

    The single place the attachment convention lives: the simulator
    carries a ``perf`` attribute defaulting to ``None`` (profiling
    off), and the engine's :class:`~repro.engine.operators.StageContext`
    carries a ``perf`` field its emitters read at construction. Attach
    *before* building plans — stages created earlier keep their
    ``None``. Returns the profiler.
    """
    if profiler is None:
        profiler = WallProfiler(clock=clock)
    sim.perf = profiler
    if engine is not None:
        # StageContext is a frozen dataclass; swap the engine's for a
        # copy carrying the profiler so every stage built from now on
        # hands it to its emitter.
        from dataclasses import replace

        engine.ctx = replace(engine.ctx, perf=profiler)
    return profiler
