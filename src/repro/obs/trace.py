"""The flight recorder: a deterministic event trace of one simulation.

The paper's profiling procedure (Section 3.1) starts from *seeing*
where cycles and pages go; end-state aggregates (``StageReport``,
``BufferSnapshot``, ``TableScanStats``) answer "how much" but never
"when" or "in what order". :class:`Tracer` is the missing timeline:

* the :class:`~repro.sim.simulator.Simulator` drives it at every task
  lifecycle edge — spawn, compute slice, queue block/unblock, sleep
  (throttle or think time), completion;
* storage and memory components feed discrete events into it — pool
  hit/miss/evict, spill write/read, prefetch issue/waste, elevator
  attach/detach/split/merge, throttle pauses, grant/return;
* everything is stamped with the *simulated* clock, never wall time,
  so two runs of the same plan produce **bit-identical** traces.

Cost discipline: a tracer is attached by assignment (``sim.tracer =
tracer``; components carry a ``tracer`` attribute defaulting to
``None``) and every emit site is guarded by a single ``is not None``
check — with tracing disabled the recorder costs one pointer test per
already-expensive operation and allocates nothing.

Exports: :meth:`Tracer.to_chrome` produces the Chrome/Perfetto
``trace_event`` JSON object (load it at ``chrome://tracing`` or
https://ui.perfetto.dev), :meth:`Tracer.to_json` its deterministic
serialization, and :meth:`Tracer.timeline` a plain-text timeline for
terminals. The ``repro trace`` CLI command wraps all three.

Lane layout (Chrome ``tid``): compute slices land on their processor's
lane (``cpu0`` .. ``cpuN-1``); discrete events land on per-subsystem
lanes so a Perfetto view shows CPU occupancy over storage activity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional

__all__ = [
    "TraceEvent",
    "Tracer",
    "attach_tracer",
    "TID_TASKS",
    "TID_QUEUES",
    "TID_POOL",
    "TID_SCANS",
    "TID_SPILL",
    "TID_MEMORY",
    "TID_SERVER",
]

# Perfetto lane ids for non-processor events. Processor lanes use the
# processor index directly (0 .. n-1); subsystem lanes start high
# enough that no realistic machine collides with them.
TID_TASKS = 100
TID_QUEUES = 101
TID_POOL = 102
TID_SCANS = 103
TID_SPILL = 104
TID_MEMORY = 105
TID_SERVER = 106

_LANE_NAMES = {
    TID_TASKS: "tasks",
    TID_QUEUES: "queues",
    TID_POOL: "buffer-pool",
    TID_SCANS: "elevator-scans",
    TID_SPILL: "spill",
    TID_MEMORY: "work-mem",
    TID_SERVER: "server",
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event, already in ``trace_event`` vocabulary.

    ``ph`` is the Chrome phase: ``"X"`` for a complete (duration)
    event, ``"i"`` for an instant. ``ts``/``dur`` are in simulated
    cost units (exported 1:1 as trace microseconds).
    """

    ts: float
    ph: str
    cat: str
    name: str
    tid: int
    dur: float = 0.0
    args: tuple = ()

    def to_chrome(self) -> dict:
        event: dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "pid": 1,
            "tid": self.tid,
        }
        if self.ph == "X":
            event["dur"] = self.dur
        if self.ph == "i":
            event["s"] = "t"  # thread-scoped instant
        if self.args:
            event["args"] = dict(self.args)
        return event


class Tracer:
    """Append-only recorder of simulator and storage events.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time —
        usually ``lambda: sim.now``. Storage components never talk to
        the simulator; the tracer is the one observer that may.

    The emit API is deliberately tiny: :meth:`instant` for discrete
    events and :meth:`complete` for spans whose start and duration the
    caller already knows (the simulator schedules a compute slice's
    completion at issue time, so both are known up front and events
    append in deterministic issue order).
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.events: list[TraceEvent] = []
        self._lanes: dict[int, str] = dict(_LANE_NAMES)

    def __len__(self) -> int:
        return len(self.events)

    # -- emit --------------------------------------------------------------

    def instant(
        self,
        name: str,
        cat: str,
        tid: int = TID_TASKS,
        **args: Any,
    ) -> None:
        """Record a discrete event at the current simulated time."""
        self.events.append(
            TraceEvent(
                ts=self._clock(),
                ph="i",
                cat=cat,
                name=name,
                tid=tid,
                args=tuple(sorted(args.items())),
            )
        )

    def complete(
        self,
        name: str,
        cat: str,
        start: float,
        dur: float,
        tid: int,
        **args: Any,
    ) -> None:
        """Record a span with known start and duration."""
        self.events.append(
            TraceEvent(
                ts=start,
                ph="X",
                cat=cat,
                name=name,
                tid=tid,
                dur=dur,
                args=tuple(sorted(args.items())),
            )
        )

    def name_lane(self, tid: int, name: str) -> None:
        """Label a lane (exported as ``thread_name`` metadata)."""
        self._lanes[tid] = name

    # -- queries -----------------------------------------------------------

    def select(
        self, cat: Optional[str] = None, name: Optional[str] = None
    ) -> list[TraceEvent]:
        """Events filtered by category and/or name, in record order."""
        return [
            e
            for e in self.events
            if (cat is None or e.cat == cat)
            and (name is None or e.name == name)
        ]

    def count(self, cat: Optional[str] = None, name: Optional[str] = None) -> int:
        return len(self.select(cat, name))

    def compute_time_by_lane(self) -> dict[int, float]:
        """Per-processor sum of compute-slice durations.

        Summed in record order, so each lane's total reproduces the
        simulator's ``Processor.busy_time`` accumulation bit for bit —
        the trace conservation identity the tests assert.
        """
        totals: dict[int, float] = {}
        for event in self.events:
            if event.ph == "X" and event.cat == "compute":
                totals[event.tid] = totals.get(event.tid, 0.0) + event.dur
        return totals

    # -- exports -----------------------------------------------------------

    def to_chrome(self) -> dict:
        """The Chrome/Perfetto ``trace_event`` JSON object."""
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro-sim"},
            }
        ]
        used = {e.tid for e in self.events}
        for tid in sorted(used):
            label = self._lanes.get(tid, f"cpu{tid}")
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        return {
            "traceEvents": metadata + [e.to_chrome() for e in self.events],
            "displayTimeUnit": "ms",
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Deterministic serialization of :meth:`to_chrome` (stable key
        order, no wall-clock anywhere — byte-identical across runs)."""
        return json.dumps(self.to_chrome(), indent=indent, sort_keys=True)

    def write(self, path) -> int:
        """Write the Chrome JSON to ``path``; returns the event count."""
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=None))
        return len(self.events)

    def timeline(self, limit: Optional[int] = None) -> str:
        """Plain-text timeline, one line per event in record order."""
        events = self.events if limit is None else self.events[:limit]
        lines = []
        for event in events:
            detail = " ".join(f"{k}={v}" for k, v in event.args)
            span = f" dur={event.dur:.6g}" if event.ph == "X" else ""
            lane = self._lanes.get(event.tid, f"cpu{event.tid}")
            lines.append(
                f"t={event.ts:<12.6g} [{event.cat}/{lane}] "
                f"{event.name}{span}"
                + (f" {detail}" if detail else "")
            )
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)


def attach_tracer(
    sim,
    pool=None,
    memory=None,
    scans=None,
    tracer: Optional[Tracer] = None,
) -> Tracer:
    """Wire one tracer through a simulator and its storage components.

    The single place the attachment convention lives: the simulator
    and every component carry a ``tracer`` attribute defaulting to
    ``None`` (tracing off); this sets them all to the same recorder
    whose clock is the simulator's. Returns the tracer.
    """
    if tracer is None:
        tracer = Tracer(clock=lambda: sim.now)
    sim.tracer = tracer
    for component in (pool, memory, scans):
        if component is not None:
            component.tracer = tracer
    return tracer


def validate_chrome_trace(trace: Mapping | Iterable) -> list[str]:
    """Check an exported object against the Chrome trace schema keys.

    Returns a list of problems (empty = valid): the object must carry
    a ``traceEvents`` list whose members each have ``name``/``ph``/
    ``pid``/``tid``, a numeric ``ts`` on non-metadata events, a
    numeric ``dur`` on complete events, and a scope on instants. Used
    by the CI trace-smoke step and the CLI's ``--validate``.
    """
    problems: list[str] = []
    if not isinstance(trace, Mapping):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no 'traceEvents' list"]
    for index, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index} missing {key!r}")
        ph = event.get("ph")
        if ph not in ("M", "X", "i"):
            problems.append(f"event {index} has unknown phase {ph!r}")
        if ph in ("X", "i") and not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {index} has no numeric 'ts'")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"complete event {index} has no numeric 'dur'")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"instant event {index} has no scope 's'")
    return problems


# validate_chrome_trace is exported for the CLI and tests but kept out
# of __all__'s core vocabulary on purpose; import it explicitly.
__all__.append("validate_chrome_trace")
