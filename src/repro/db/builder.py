"""Fluent query construction lowering to the engine's plan IR.

The builder is *sugar*, not a new IR: every method lowers to one of
the :mod:`repro.engine.plan` constructors, so schema errors still
surface at build time (the constructors validate column references and
dtypes) and a builder-built query is indistinguishable — signature,
schema, op_ids — from a hand-built ``PlanNode`` tree.

Fusion rule (matching the paper's query structure): ``where`` and
``select`` called while the initial scan is still *pending* fuse into
the scan stage (a fused scan evaluates the predicate and emits result
tuples — the natural sharing pivot for scan-heavy queries). Once any
operator materializes the scan, ``where`` lowers to ``filter_`` and
``select`` to ``project``. ``filter`` / ``project`` are the
always-materialize spellings for callers that want a standalone node.

Pivot rule: the sharing pivot defaults to the fused scan created by
:meth:`Session.table`, and moves to a join node when one is built
(mirroring the TPC-H drivers: scan-heavy queries share their scan,
join-heavy queries their join). ``share_at()`` pins the pivot to the
current node; ``share_at(None)`` disables sharing for the query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.engine.expressions import Expr, and_, col
from repro.engine.plan import (
    AggSpec,
    PlanNode,
    aggregate,
    filter_,
    hash_join,
    limit,
    merge_join,
    nested_loop_join,
    project,
    scan,
    sort,
)
from repro.errors import PlanError
from repro.storage.catalog import Catalog

__all__ = ["Query", "QueryBuilder"]


@dataclass(frozen=True)
class Query:
    """A built query: the plan, its sharing pivot, and a type name.

    ``pivot_op_id`` is ``None`` for queries that must always run solo;
    ``name`` keys policy decisions and profile caches. The session
    merges submissions only when pivot signature, pivot op_id *and*
    name all agree — the signature is the engine's merge test, the
    op_id is how the engine addresses the pivot in every member, and
    the name is what policies key their specs on.

    ``batch_size`` overrides the session's exchange batch size for
    this query (``None`` = inherit). A batch-size override changes the
    simulated flush boundaries, so the session also refuses to merge
    submissions whose effective batch sizes differ.

    ``dop`` requests intra-query parallelism for this query (``None``
    = inherit the session config's default). The session's routing
    weighs parallelizing against sharing per batch; submissions whose
    effective dop differs never merge into one group.
    """

    plan: PlanNode
    pivot_op_id: Optional[str]
    name: str
    batch_size: Optional[int] = None
    dop: Optional[int] = None

    @property
    def pivot_signature(self) -> Optional[str]:
        if self.pivot_op_id is None:
            return None
        return self.plan.find(self.pivot_op_id).signature


class QueryBuilder:
    """Fluent, chainable construction of one query plan.

    Builders are mutable: each method applies its operator and returns
    ``self``. Obtain the immutable artifacts with :meth:`plan` (the
    ``PlanNode``) or :meth:`build` (a :class:`Query` carrying the
    pivot); a materialized builder can keep chaining afterwards.

    Examples
    --------
    ``where``/``select`` fuse into the pending scan (one stage, the
    natural sharing pivot); later operators lower to standalone plan
    nodes. Schema errors surface at build time:

    >>> from repro.db import QueryBuilder
    >>> from repro.engine.expressions import col, lt
    >>> from repro.storage import Catalog, DataType, Schema
    >>> catalog = Catalog()
    >>> _ = catalog.create("t", Schema([("k", DataType.INT),
    ...                                 ("v", DataType.FLOAT)]))
    >>> query = (QueryBuilder(catalog, "t")
    ...          .where(lt(col("k"), 10))
    ...          .select("v")
    ...          .limit(5)
    ...          .named("small-v")
    ...          .build())
    >>> (query.name, query.plan.kind, [c.kind for c in query.plan.children])
    ('small-v', 'limit', ['scan'])
    >>> query.pivot_op_id == query.plan.children[0].op_id
    True
    >>> QueryBuilder(catalog, "t").select("missing").plan()
    Traceback (most recent call last):
        ...
    repro.errors.SchemaError: unknown column 'missing'; \
schema has ('k', 'v')
    """

    def __init__(
        self,
        catalog: Catalog,
        table: str,
        columns: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
    ) -> None:
        catalog.table(table)  # unknown tables fail at builder time
        self._catalog = catalog
        self._node: Optional[PlanNode] = None
        self._scan: Optional[dict] = {
            "table": table,
            "columns": list(columns) if columns is not None else None,
            "predicate": None,
            "outputs": None,
            "cost_factor": 1.0,
        }
        self._pivot_id: Optional[str] = None
        self._pivot_explicit = False
        self._name = name or table
        self._batch_size: Optional[int] = None
        self._dop: Optional[int] = None

    # -- scan fusion -----------------------------------------------------

    def _materialize(self) -> PlanNode:
        """Lower the pending scan (if any); return the current root."""
        if self._scan is not None:
            pending, self._scan = self._scan, None
            self._node = scan(
                self._catalog,
                pending["table"],
                columns=pending["columns"],
                predicate=pending["predicate"],
                outputs=pending["outputs"],
                cost_factor=pending["cost_factor"],
            )
            if not self._pivot_explicit:
                self._pivot_id = self._node.op_id
        assert self._node is not None
        return self._node

    def _apply(self, node: PlanNode) -> "QueryBuilder":
        self._node = node
        return self

    # -- filtering and projection ----------------------------------------

    def where(self, predicate: Expr) -> "QueryBuilder":
        """Keep rows matching ``predicate``.

        Fuses into the pending scan stage when possible (conjoining
        with any earlier fused predicate); otherwise lowers to a
        ``filter`` node.
        """
        if self._scan is not None and self._scan["outputs"] is None:
            existing = self._scan["predicate"]
            self._scan["predicate"] = (
                predicate if existing is None else and_(existing, predicate)
            )
            return self
        return self.filter(predicate)

    def filter(self, predicate: Expr, cost_factor: float = 1.0) -> "QueryBuilder":
        """Always lower to a standalone ``filter`` node."""
        node = filter_(self._materialize(), predicate, cost_factor=cost_factor)
        return self._apply(node)

    def select(self, *items) -> "QueryBuilder":
        """Shape the output columns.

        On a pending scan with no fused predicate, all-plain column
        names narrow the storage columns; once a predicate is fused
        (``where`` first), bare names lower to identity *outputs*
        instead, so the predicate keeps seeing every storage column
        while the scan emits only the selected ones. ``(name, expr,
        dtype)`` tuples compute new columns — fused into the pending
        scan stage when possible, else a ``project`` node — and may be
        mixed freely with bare names.
        """
        if not items:
            raise PlanError("select() needs at least one column")
        names = all(isinstance(item, str) for item in items)
        if self._scan is not None:
            fusible = self._scan["outputs"] is None
            if names and fusible and self._scan["predicate"] is None:
                # No fused predicate yet: narrow the storage columns
                # (a predicate fused later compiles against the
                # narrowed schema, erroring at build time if it reads
                # a dropped column).
                self._scan["columns"] = list(items)
                return self
            if fusible:
                # A fused predicate may read columns the projection
                # drops, so bare names lower to identity *outputs*:
                # the predicate still sees the full storage schema,
                # the scan emits only the selected columns.
                schema = self._pending_schema()
                self._scan["outputs"] = self._as_outputs(items, schema)
                return self
        node = self._materialize()
        return self._apply(project(node, self._as_outputs(items, node.schema)))

    def _pending_schema(self):
        """The storage schema a pending scan's expressions see."""
        table = self._catalog.table(self._scan["table"])
        return table.projected_schema(self._scan["columns"])

    @staticmethod
    def _as_outputs(items, schema) -> tuple:
        """Normalize select items: bare names become identity outputs."""
        outputs = []
        for item in items:
            if isinstance(item, str):
                outputs.append((item, col(item), schema.dtype_of(item)))
            else:
                outputs.append(item)
        return tuple(outputs)

    def project(self, outputs: Sequence[tuple]) -> "QueryBuilder":
        """Always lower to a standalone ``project`` node."""
        return self._apply(project(self._materialize(), list(outputs)))

    def with_cost_factor(self, cost_factor: float) -> "QueryBuilder":
        """Scale the pending scan's fused per-tuple expression cost."""
        if self._scan is None:
            raise PlanError(
                "cost_factor applies to the scan stage; set it before "
                "materializing operators on top"
            )
        self._scan["cost_factor"] = cost_factor
        return self

    # -- aggregation, ordering, truncation -------------------------------

    def agg(self, *specs: AggSpec, by: Sequence[str] = ()) -> "QueryBuilder":
        """Hash aggregation: ``agg(AggSpec(...), ..., by=("k",))``."""
        return self._apply(aggregate(self._materialize(), tuple(by), list(specs)))

    def order_by(self, *keys) -> "QueryBuilder":
        """Sort by keys; a plain name means ascending, ``(name, False)``
        descending."""
        normalized = [
            (key, True) if isinstance(key, str) else (key[0], bool(key[1]))
            for key in keys
        ]
        return self._apply(sort(self._materialize(), normalized))

    def limit(self, count: int) -> "QueryBuilder":
        return self._apply(limit(self._materialize(), count))

    # -- joins -----------------------------------------------------------

    def _other_plan(self, other: Union["QueryBuilder", PlanNode]) -> PlanNode:
        if isinstance(other, QueryBuilder):
            return other.plan()
        return other

    def hash_join(
        self,
        build: Union["QueryBuilder", PlanNode],
        build_key: str,
        probe_key: str,
        join_type: str = "inner",
    ) -> "QueryBuilder":
        """Hash-join this stream (the probe side) against ``build``."""
        node = hash_join(
            self._other_plan(build),
            self._materialize(),
            build_key=build_key,
            probe_key=probe_key,
            join_type=join_type,
        )
        self._retarget_pivot(node)
        return self._apply(node)

    def merge_join(
        self,
        right: Union["QueryBuilder", PlanNode],
        left_key: str,
        right_key: str,
    ) -> "QueryBuilder":
        """Merge-join this (sorted) stream with sorted ``right``."""
        node = merge_join(
            self._materialize(),
            self._other_plan(right),
            left_key=left_key,
            right_key=right_key,
        )
        self._retarget_pivot(node)
        return self._apply(node)

    def nl_join(
        self,
        right: Union["QueryBuilder", PlanNode],
        predicate: Expr,
    ) -> "QueryBuilder":
        """Nested-loop-join this (outer) stream against ``right``."""
        node = nested_loop_join(self._materialize(), self._other_plan(right), predicate)
        self._retarget_pivot(node)
        return self._apply(node)

    def _retarget_pivot(self, join_node: PlanNode) -> None:
        # Join-heavy queries share at their join (its output is small
        # relative to the work below it), unless the caller pinned the
        # pivot elsewhere.
        if not self._pivot_explicit:
            self._pivot_id = join_node.op_id

    # -- sharing and naming ----------------------------------------------

    def share_at(self, enabled: bool = True) -> "QueryBuilder":
        """Pin the sharing pivot to the current node (or, with
        ``enabled=False``, mark the query always-solo)."""
        self._pivot_explicit = True
        self._pivot_id = self._materialize().op_id if enabled else None
        return self

    def named(self, name: str) -> "QueryBuilder":
        """Set the query-type name used by policies and profiles."""
        self._name = name
        return self

    def batch_size(self, rows: int) -> "QueryBuilder":
        """Override the exchange batch size for this query.

        ``rows`` tuples per :class:`~repro.engine.packet.RowBatch`
        between this query's stages, instead of the session default.
        A modeled knob: flush boundaries move, so the simulated
        timeline changes with it.
        """
        if rows < 1:
            raise PlanError(f"batch_size must be >= 1, got {rows}")
        self._batch_size = rows
        return self

    def parallel(self, dop: int) -> "QueryBuilder":
        """Request ``dop``-way intra-query parallelism for this query.

        The engine fragments the plan's parallel region (fragmented
        scans, partition-wise join/aggregate behind exchanges — see
        :mod:`repro.engine.parallel`) across ``dop`` worker fragments;
        the row set is identical to serial execution. The session's
        routing may still prefer sharing when the projection says a
        shared group finishes sooner. ``parallel(1)`` pins the query
        serial regardless of the session default.
        """
        if dop < 1:
            raise PlanError(f"parallel degree must be >= 1, got {dop}")
        self._dop = dop
        return self

    # -- terminals -------------------------------------------------------

    @property
    def schema(self):
        """Output schema of the query as built so far."""
        return self.plan().schema

    def plan(self) -> PlanNode:
        """The built ``PlanNode`` tree (the engine's IR)."""
        return self._materialize()

    def build(self) -> Query:
        """The built :class:`Query` with its sharing pivot."""
        plan = self._materialize()
        return Query(
            plan=plan,
            pivot_op_id=self._pivot_id,
            name=self._name,
            batch_size=self._batch_size,
            dop=self._dop,
        )

    def __repr__(self) -> str:
        if self._scan is not None:
            return f"QueryBuilder(pending scan of {self._scan['table']!r})"
        return f"QueryBuilder({self._node!r})"
