"""The Database/Session facade: submit queries, let the system decide.

The paper's end state is an engine that decides *for itself* when to
share. :class:`Session` is that loop packaged behind one object:

* :meth:`Session.table` starts a fluent
  :class:`~repro.db.builder.QueryBuilder` lowering to the engine's
  plan IR;
* :meth:`Session.submit` buffers queries; :meth:`Session.run_all`
  groups the batch by **pivot signature** (two queries with equal
  pivot subtrees request the same operation — the engine's merge
  test), consults the sharing policy per group, launches shared groups
  or solo queries accordingly, runs the simulator, and returns one
  :class:`~repro.db.result.QueryResult` per submission;
* the default policy is the Section-4 :class:`ShareAdvisor` fed by an
  on-demand CPU profile of each new operation (cached per signature)
  and adjusted per decision by a live
  :class:`~repro.policies.resource_outlook.ResourceOutlook` over the
  session's pool/broker/manager — so the fig_mem Part B flip (share
  against a cold cache, decline warm) happens with zero manual
  wiring. Pass any :class:`~repro.policies.base.SharingPolicy`
  (``ModelGuided``, ``OnlineModelGuided``, ``AlwaysShare``, ...) to
  override.

Sessions are cheap: one simulator, one engine, one storage-component
set built from the :class:`~repro.db.config.RuntimeConfig`. Simulated
time and cache state persist across ``run_all`` batches — a second
batch of the same queries sees a warm pool, which is exactly what
makes its sharing decision flip.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

from repro.core.decision import ShareAdvisor, ShareDecision
from repro.core.spec import QuerySpec
from repro.db.builder import Query, QueryBuilder
from repro.db.config import RuntimeConfig
from repro.db.result import QueryResult
from repro.engine.engine import Engine
from repro.engine.packet import QueryHandle
from repro.engine.parallel import find_region
from repro.engine.plan import PlanNode
from repro.engine.stats import ResourceReport, resource_report, stage_report
from repro.errors import EngineError
from repro.obs import (
    AuditLog,
    AuditRecord,
    MetricsRegistry,
    Tracer,
    WallProfiler,
    attach_profiler,
    attach_tracer,
)
from repro.policies.base import SharingPolicy
from repro.policies.resource_outlook import ResourceOutlook, ResourceProfile
from repro.policies.workset import estimate_work_pages
from repro.profiling.profiler import QueryProfiler
from repro.sim.events import Sleep
from repro.sim.simulator import Simulator
from repro.storage.catalog import Catalog

__all__ = ["Database", "Session"]

Submittable = Union[Query, QueryBuilder, PlanNode]


@dataclass
class _Submission:
    """One buffered query awaiting ``run_all``."""

    query: Query
    label: str
    share: Optional[bool]
    delay: float = 0.0
    handle: Optional[QueryHandle] = None
    decision: Optional[ShareDecision] = None
    group_size: int = 1
    shared: bool = False


class Database:
    """A catalog plus the runtime configuration to query it with.

    Examples
    --------
    :meth:`Database.open` is the one-call entry point — a catalog and
    a config (object, preset name, or nothing for the ungoverned
    default) yield a live :class:`Session`:

    >>> from repro.db import Database
    >>> from repro.storage import Catalog, DataType, Schema
    >>> catalog = Catalog()
    >>> table = catalog.create("t", Schema([("k", DataType.INT)]))
    >>> table.insert_many([(i,) for i in range(4)])
    >>> session = Database.open(catalog, "unbounded")
    >>> session.run(session.table("t", columns=["k"])).rows
    [(0,), (1,), (2,), (3,)]
    """

    def __init__(
        self,
        catalog: Catalog,
        config: Union[RuntimeConfig, str, None] = None,
    ) -> None:
        if config is None:
            config = RuntimeConfig()
        elif isinstance(config, str):
            config = RuntimeConfig.preset(config)
        self.catalog = catalog
        self.config = config

    @classmethod
    def open(
        cls,
        catalog: Catalog,
        config: Union[RuntimeConfig, str, None] = None,
        policy: Optional[SharingPolicy] = None,
        threshold: float = 1.0,
    ) -> "Session":
        """Open a fresh :class:`Session` — the one-call entry point."""
        return cls(catalog, config).session(policy=policy, threshold=threshold)

    def session(
        self,
        policy: Optional[SharingPolicy] = None,
        threshold: float = 1.0,
    ) -> "Session":
        """Mint a session: fresh simulator, engine, and storage set."""
        return Session(self, policy=policy, threshold=threshold)

    def serve(self, policy: Optional[SharingPolicy] = None, **server_kwargs):
        """Open a fresh session and stand a long-running open-system
        :class:`~repro.server.server.Server` on it. ``policy`` is the
        *sharing* policy (``None`` = the session's outlook-driven
        advisor); admission control, in-flight caps, and mid-flight
        attach are forwarded via ``server_kwargs``."""
        from repro.server.server import Server

        return Server(self.session(), policy=policy, **server_kwargs)

    def __repr__(self) -> str:
        return f"Database({len(self.catalog)} tables, {self.config!r})"


class Session:
    """One simulated machine executing queries under one policy.

    Parameters
    ----------
    database:
        The :class:`Database` (catalog + config) this session queries.
    policy:
        Optional :class:`~repro.policies.base.SharingPolicy` deciding
        share-vs-solo per prospective group. ``None`` (default) uses
        the built-in advisor: an on-demand CPU profile per operation,
        adjusted by the live resource outlook, evaluated by the
        Section-4 model.
    threshold:
        Minimum predicted ``Z`` for the built-in advisor to share.

    Examples
    --------
    Buffer queries with :meth:`submit`, run the batch with
    :meth:`run_all`; same-operation submissions group by pivot
    signature and the session decides (or you force) the routing:

    >>> from repro.db import Database
    >>> from repro.storage import Catalog, DataType, Schema
    >>> catalog = Catalog()
    >>> table = catalog.create("t", Schema([("k", DataType.INT)]))
    >>> table.insert_many([(i,) for i in range(64)])
    >>> session = Database.open(catalog, "cmp32")
    >>> for i in range(3):
    ...     session.submit(session.table("t", columns=["k"]),
    ...                    label=f"client{i}", share=True)
    >>> [(r.label, r.shared, r.group_size, len(r.rows))
    ...  for r in session.run_all()]
    [('client0', True, 3, 64), ('client1', True, 3, 64), \
('client2', True, 3, 64)]

    The session clock and cache state persist across batches — that
    warm state is exactly what can flip the next sharing decision.

    >>> session.now > 0
    True
    """

    def __init__(
        self,
        database: Database,
        policy: Optional[SharingPolicy] = None,
        threshold: float = 1.0,
    ) -> None:
        config = database.config
        self.database = database
        self.catalog = database.catalog
        self.config = config
        self.sim = Simulator(
            processors=config.processors, contention=config.contention
        )
        pool, memory, scans, spill_depth = config.build_storage()
        self.engine = Engine(
            self.catalog,
            self.sim,
            costs=config.cost_model,
            page_rows=config.page_rows,
            queue_capacity=config.queue_capacity,
            buffer_pool=pool,
            memory=memory,
            scan_manager=scans,
            spill_prefetch_depth=spill_depth,
            vectorize=config.vectorize,
        )
        self.policy = policy
        self.threshold = threshold
        self.results: list[QueryResult] = []
        self._pending: list[_Submission] = []
        self._live_groups: list[tuple[str, int, int]] = []
        self._specs: dict[str, tuple[QuerySpec, str]] = {}
        self._outlook = ResourceOutlook(
            {},
            costs=config.cost_model,
            pool=self.engine.pool,
            scans=self.engine.scan_manager,
            memory=self.engine.memory,
        )
        # Observability: flight recorder (opt-in via config.trace),
        # the unified metric surface, and the decision audit trail.
        self.tracer: Optional[Tracer] = None
        if config.trace:
            self.tracer = attach_tracer(
                self.sim,
                pool=self.engine.pool,
                memory=self.engine.memory,
                scans=self.engine.scan_manager,
            )
        # Wall-clock profiler (opt-in via config.perf): the host-time
        # counterpart of the tracer — attached before any plan is
        # built so every stage's emitter reports rows to it.
        self._perf: Optional[WallProfiler] = None
        if config.perf:
            self._perf = attach_profiler(self.sim, self.engine)
        self._metrics = MetricsRegistry.for_engine(self.engine, self.sim)
        self._audit = AuditLog()
        self._batch_records: list[tuple[AuditRecord, list[_Submission]]] = []

    # -- introspection ---------------------------------------------------

    @property
    def pool(self):
        return self.engine.pool

    @property
    def memory(self):
        return self.engine.memory

    @property
    def scans(self):
        return self.engine.scan_manager

    @property
    def now(self) -> float:
        """Current simulated time — the session clock, cumulative
        across every batch run so far (a fresh session's first batch
        therefore finishes at its makespan)."""
        return self.sim.now

    def resources(self) -> ResourceReport:
        """Merged buffer/memory counters of this session so far."""
        return resource_report(self.engine)

    def metrics(self) -> MetricsRegistry:
        """The session's unified metric surface — every storage, sim,
        and stage counter behind one ``snapshot()``/``delta()``."""
        return self._metrics

    def audit_log(self) -> AuditLog:
        """Every routing decision this session has made, with its
        projections and (after the run) the measured outcome."""
        return self._audit

    def perf(self) -> WallProfiler:
        """The session's wall-clock operator profiler — per-operator
        host time, rows/s, and the work-vs-harness decomposition
        (:class:`~repro.obs.perf.WallProfiler`). Requires
        ``RuntimeConfig(perf=True)``."""
        if self._perf is None:
            raise EngineError(
                "session has no wall-clock profiler; open it with "
                "RuntimeConfig(perf=True) (or .with_(perf=True))"
            )
        return self._perf

    def stages(self, **kwargs):
        """Per-operator busy-time breakdown of this session so far."""
        return stage_report(self.sim, **kwargs)

    def prewarm(self, *tables: str) -> int:
        """Load the given tables' pages into the pool (a warm cache)."""
        if self.engine.pool is None:
            raise EngineError("session has no buffer pool to prewarm")
        loaded = 0
        for name in tables:
            loaded += self.engine.pool.prewarm_table(
                self.catalog.table(name), self.config.page_rows
            )
        return loaded

    # -- building and submitting -----------------------------------------

    def table(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
    ) -> QueryBuilder:
        """Start a fluent query over one base table."""
        return QueryBuilder(self.catalog, name, columns=columns)

    @staticmethod
    def _as_query(query: Submittable) -> Query:
        if isinstance(query, QueryBuilder):
            return query.build()
        if isinstance(query, PlanNode):
            return Query(plan=query, pivot_op_id=None, name=query.op_id)
        if isinstance(query, Query):
            return query
        raise EngineError(
            f"cannot submit {type(query).__name__}; expected a "
            "QueryBuilder, Query, or PlanNode"
        )

    def submit(
        self,
        query: Submittable,
        label: Optional[str] = None,
        share: Optional[bool] = None,
        delay: float = 0.0,
    ) -> None:
        """Buffer one query for the next :meth:`run_all`.

        ``share`` overrides the policy for this submission (``True``
        forces it into a group with same-signature submissions,
        ``False`` forces solo); ``None`` lets the policy decide.
        ``delay`` postpones the launch by that much simulated time
        (the query then always runs solo — it arrives after the
        batch's grouping decision).
        """
        if delay < 0:
            raise EngineError(f"delay must be >= 0, got {delay}")
        built = self._as_query(query)
        self._pending.append(
            _Submission(
                query=built,
                label=label or f"{built.name}#{len(self._pending)}",
                share=share,
                delay=delay,
            )
        )

    def run(
        self,
        query: Submittable,
        label: Optional[str] = None,
        share: Optional[bool] = None,
    ) -> QueryResult:
        """Submit one query, run the pending batch, return its result.

        Equivalent to ``submit(...)`` followed by ``run_all()``: any
        queries already buffered by earlier ``submit`` calls run in
        the same batch (and may group with this one); their results
        land in :attr:`results` as usual.
        """
        self.submit(query, label=label, share=share)
        return self.run_all()[-1]

    # -- the decision loop -----------------------------------------------

    def run_all(self) -> list[QueryResult]:
        """Route the buffered batch, execute it, and collect results.

        Submissions are grouped by pivot signature; each group of two
        or more consults the policy once (unless forced via
        ``submit(share=...)``). Returns results in submission order
        and appends them to :attr:`results`.
        """
        batch, self._pending = self._pending, []
        if not batch:
            return []
        self._batch_records = []
        reads_before = self._physical_reads()
        self._route(batch)
        self.sim.run()
        self._notify_policy()
        self._join_audit(reads_before)
        report = self.resources()
        snapshot = self._metrics.snapshot()
        wall_profile = (
            tuple(self._perf.profile()) if self._perf is not None else None
        )
        makespan = self.sim.now
        results = []
        for entry in batch:
            handle = entry.handle
            if handle is None or not handle.done:
                raise EngineError(
                    f"query {entry.label!r} did not complete; the "
                    "simulation deadlocked or was stopped early"
                )
            results.append(
                QueryResult(
                    label=entry.label,
                    name=entry.query.name,
                    schema=handle.schema,
                    rows=handle.rows,
                    submitted_at=handle.submitted_at,
                    finished_at=handle.finished_at,
                    shared=entry.shared,
                    group_size=entry.group_size,
                    decision=entry.decision,
                    resources=report,
                    makespan=makespan,
                    metrics=snapshot,
                    audit=tuple(
                        record
                        for record, members in self._batch_records
                        if any(member is entry for member in members)
                    ),
                    perf=wall_profile,
                )
            )
        self.results.extend(results)
        return results

    def _route(self, batch: Sequence[_Submission]) -> None:
        # Merge candidates must agree on the pivot's *signature* (the
        # engine's merge test), its *op_id* (execute_group addresses
        # the pivot by id in every member), the query *name* (policies
        # key their specs on it), the effective *batch size* (a merged
        # group shares one stage pipeline, so its members must agree
        # on the exchange batching), and the effective *dop* (the
        # share-vs-parallelize choice is made once per group).
        groups: dict[tuple, list[_Submission]] = {}
        for entry in batch:
            if entry.delay > 0:
                self._audit_route("solo", "solo", [entry])
                self._launch_delayed(entry)
                continue
            signature = entry.query.pivot_signature
            if entry.share is False or signature is None:
                source = "forced" if entry.share is False else "solo"
                self._launch_solo_entry(entry, source)
                continue
            key = (
                signature,
                entry.query.pivot_op_id,
                entry.query.name,
                self._batch_rows(entry.query),
                self._effective_dop(entry.query),
            )
            groups.setdefault(key, []).append(entry)
        for members in groups.values():
            forced = [m for m in members if m.share is True]
            undecided = [m for m in members if m.share is None]
            dop = self._effective_dop(members[0].query)
            if len(members) < 2:
                self._launch_solo_entry(members[0], "solo")
                continue
            if forced and not undecided:
                self._audit_route("forced", "share", forced)
                self._launch_group(forced)
                continue
            if dop > 1 and not forced:
                # The four-way choice: share, parallelize, both, or
                # neither — priced by the outlook's projection. Any
                # forced share=True member pins the group back to the
                # binary share path below.
                self._route_modes(members, dop)
                continue
            decision, record = self._decide(members)
            share = decision.share if isinstance(decision, ShareDecision) else decision
            for entry in undecided:
                entry.decision = decision if isinstance(decision, ShareDecision) else None
            if share or (forced and len(forced) >= 2):
                chosen = members if share else forced
                solo = [] if share else undecided
                if share:
                    self._batch_records.append((record, list(chosen)))
                else:
                    # The model declined, but enough submitters pinned
                    # share=True to launch a forced group anyway; the
                    # decision record measures the solo remainder.
                    self._audit_route("forced", "share", chosen)
                    self._batch_records.append((record, list(solo)))
                self._launch_group(chosen)
                for entry in solo:
                    self._launch(None, [entry])
            else:
                self._batch_records.append((record, list(members)))
                for entry in members:
                    self._launch(None, [entry])

    def _batch_rows(self, query: Query) -> Optional[int]:
        """The exchange batch size in force for one query: its own
        override, else the session config's (``None`` = engine
        default, i.e. the page geometry)."""
        if query.batch_size is not None:
            return query.batch_size
        return self.config.batch_size

    def _effective_dop(self, query: Query) -> int:
        """The intra-query parallelism actually available to ``query``:
        its own override, else the session default — and 1 whenever the
        plan has no parallelizable region (the engine would fall back
        to serial anyway; resolving it here keeps routing and audit
        honest)."""
        dop = query.dop if query.dop is not None else self.config.dop
        if dop > 1 and find_region(query.plan) is None:
            return 1
        return dop

    def _launch_solo_entry(self, entry: _Submission, source: str) -> None:
        """Launch one entry outside any sharing group — parallelized
        when its effective dop asks for it, serial otherwise."""
        dop = self._effective_dop(entry.query)
        if dop > 1:
            self._audit_route(source, "parallel", [entry])
            self._launch_parallel(entry, dop)
        else:
            self._audit_route(source, "solo", [entry])
            self._launch(None, [entry])

    def _route_modes(self, members: list[_Submission], dop: int) -> None:
        """Route one same-signature group through the four-way
        share / parallelize / both / solo projection."""
        projection, decision = self._choose_mode(members, dop)
        for entry in members:
            entry.decision = decision
        if projection.mode == "share":
            self._launch_group(members)
        elif projection.mode == "both":
            size = max(2, projection.partition_group_size)
            for start in range(0, len(members), size):
                chunk = members[start:start + size]
                if len(chunk) >= 2:
                    self._launch_group(chunk)
                else:
                    self._launch(None, chunk)
        elif projection.mode == "parallel":
            for entry in members:
                self._launch_parallel(entry, dop)
        else:
            for entry in members:
                self._launch(None, [entry])

    def _choose_mode(self, members: list[_Submission], dop: int):
        """Price all four execution arms for one prospective group.

        An attached policy with a ``choose_mode`` method (e.g.
        :class:`~repro.policies.model_guided.ModelGuidedPolicy`) is
        consulted directly; otherwise the built-in advisor's rates
        feed the outlook's projection. Either way one audit record
        with ``outcome = mode`` binds to the launched members.
        """
        query = members[0].query
        m = len(members)
        chooser = getattr(self.policy, "choose_mode", None)
        if chooser is not None:
            projection = chooser(
                query.name, m, self.config.processors, dop
            )
            self._audit_route("policy", projection.mode, members)
            return projection, None
        decision = self.advise(query, m)
        signature = query.pivot_signature
        spec, pivot_id = self._specs[signature]
        adjusted = self._outlook.adjusted_spec(signature, spec, pivot_id, m)
        projection = self._outlook.share_vs_parallelize(
            query.name,
            m,
            self.config.processors,
            dop,
            shared_rate=decision.shared_rate,
            unshared_rate=decision.unshared_rate,
            contention=self.config.contention,
            spec=adjusted,
            pivot_name=pivot_id,
        )
        self._audit_route("advisor", projection.mode, members, decision)
        return projection, decision

    def _launch_parallel(self, entry: _Submission, dop: int) -> None:
        handle = self.engine.execute(
            entry.query.plan,
            entry.label,
            batch_rows=self._batch_rows(entry.query),
            dop=dop,
        )
        entry.handle = handle
        entry.group_size = 1
        entry.shared = False
        group = self.engine.groups[-1]
        self._live_groups.append((entry.query.name, group.size, group.group_id))

    def _launch(self, pivot: Optional[str], members: list[_Submission]) -> None:
        group = self.engine.execute_group(
            [entry.query.plan for entry in members],
            pivot_op_id=pivot,
            labels=[entry.label for entry in members],
            batch_rows=self._batch_rows(members[0].query),
        )
        for entry, handle in zip(members, group.handles):
            entry.handle = handle
            entry.group_size = group.size
            entry.shared = group.shared
        self._live_groups.append((members[0].query.name, group.size, group.group_id))

    def _launch_group(self, members: list[_Submission]) -> None:
        self._launch(members[0].query.pivot_op_id, members)

    def _launch_delayed(self, entry: _Submission) -> None:
        engine = self.engine
        batch_rows = self._batch_rows(entry.query)
        dop = self._effective_dop(entry.query)

        def submitter():
            yield Sleep(entry.delay)
            entry.handle = engine.execute(
                entry.query.plan, entry.label, batch_rows=batch_rows, dop=dop
            )

        self.sim.spawn(submitter(), name=f"submit/{entry.label}")

    def _notify_policy(self) -> None:
        """Feed each drained group's stage tasks back to the policy —
        the learning hook ``OnlineModelGuidedPolicy`` depends on."""
        launched, self._live_groups = self._live_groups, []
        if self.policy is None:
            return
        for name, size, group_id in launched:
            tasks = self.engine.group_tasks.get(group_id)
            if tasks:
                self.policy.observe_group(name, size, tasks)

    # -- the audit trail -------------------------------------------------

    def _physical_reads(self) -> Optional[float]:
        """Session-cumulative physical page reads right now.

        Pool misses already count elevator reads (the manager reads
        through ``pool.access``), so the pool is the single source of
        truth when present; without one, the per-table scan stats are
        the only read counter; without either, ``None`` (ungoverned
        sessions measure no I/O)."""
        pool = self.engine.pool
        if pool is not None:
            return float(pool.stats.misses)
        scans = self.engine.scan_manager
        if scans is not None:
            return float(sum(s.physical_reads for s in scans.snapshot()))
        return None

    def _projection_fields(self, signature: Optional[str], m: int) -> dict:
        """The outlook's projections for one prospective group — the
        audit record's decision-time inputs."""
        if signature is None:
            return {}
        fields: dict = {
            "projected_io_extra": self._outlook.pivot_extra_work(signature, m)
        }
        profile = self._outlook.profiles.get(signature)
        if profile is None:
            return fields
        memory = self.engine.memory
        if memory is not None and profile.work_pages:
            fields["projected_spill_pages"] = memory.projected_spill(
                profile.work_pages, operators=m
            )
        scans = self.engine.scan_manager
        if scans is not None:
            fields["projected_drift_share"] = scans.projected_drift_share(
                profile.table, profile.pages, m, cpu_skew=profile.cpu_skew
            )
        return fields

    def _audit_decision(
        self,
        source: str,
        outcome: str,
        query: Query,
        group_size: int,
        decision: Optional[ShareDecision] = None,
    ) -> AuditRecord:
        """Append one decision record (projections at decision time)."""
        signature = query.pivot_signature
        fields = self._projection_fields(signature, group_size)
        if decision is not None:
            fields.update(
                projected_z=decision.benefit,
                projected_shared_rate=decision.shared_rate,
                projected_unshared_rate=decision.unshared_rate,
            )
        return self._audit.append(
            query=query.name,
            signature=signature or "",
            group_size=group_size,
            source=source,
            outcome=outcome,
            decided_at=self.sim.now,
            **fields,
        )

    def _audit_route(
        self,
        source: str,
        outcome: str,
        members: list[_Submission],
        decision: Optional[ShareDecision] = None,
    ) -> AuditRecord:
        """Append one routing record and bind it to its submissions."""
        record = self._audit_decision(
            source, outcome, members[0].query, len(members), decision
        )
        self._batch_records.append((record, list(members)))
        return record

    def _join_audit(self, reads_before: Optional[float]) -> None:
        """Join each of this batch's records with what was measured:
        group wall (first submit to last finish) and the batch's
        physical-read delta (exact for a single decision, apportioned
        evenly otherwise)."""
        reads_after = self._physical_reads()
        reads_delta: Optional[float] = None
        if reads_before is not None and reads_after is not None:
            reads_delta = reads_after - reads_before
        joinable = []
        for record, members in self._batch_records:
            handles = [
                m.handle for m in members if m.handle is not None and m.handle.done
            ]
            if handles:
                joinable.append((record, handles))
        share = (
            reads_delta / len(joinable)
            if reads_delta is not None and joinable
            else None
        )
        for record, handles in joinable:
            latency = max(h.finished_at for h in handles) - min(
                h.submitted_at for h in handles
            )
            record.join(latency, physical_reads=share)

    # -- the built-in advisor --------------------------------------------

    def _decide(
        self, members: list[_Submission]
    ) -> tuple[Union[ShareDecision, bool], AuditRecord]:
        query = members[0].query
        m = len(members)
        if self.policy is not None:
            verdict = self.policy.should_share(query.name, m, self.config.processors)
            decision = verdict if isinstance(verdict, ShareDecision) else None
            share = verdict.share if decision is not None else bool(verdict)
            record = self._audit_decision(
                "policy",
                "share" if share else "solo",
                query,
                m,
                decision=decision,
            )
            return verdict, record
        verdict = self.advise(query, m)
        # advise() appended its own "advisor" record; it is the one
        # _route binds to the launched members.
        record = self._audit.records[-1]
        return verdict, record

    def advise(
        self,
        query: Submittable,
        group_size: int,
        cpu_skew: Optional[float] = None,
    ) -> ShareDecision:
        """The built-in verdict: would sharing ``group_size`` copies of
        ``query`` beat running them independently *right now*?

        Uses a cached CPU profile of the operation and the live
        resource outlook (cold pages, spill pressure) — re-evaluated
        per call, so the same query can share against a cold cache and
        decline once the cache warms.

        ``cpu_skew`` (slowest consumer's per-page CPU over the
        fastest's, 1.0 = uniform) projects consumer-speed skew onto
        the decision: the outlook discounts the cooperative-scan
        attach benefit by the drift the configured manager would let
        such a convoy accumulate, so advice to skewed convoys stops
        assuming they share one physical pass. A declared skew sticks
        to the operation — later ``advise`` calls and ``run_all``'s
        routing reuse it until a new value is declared (``None``, the
        default, keeps the stored projection).
        """
        built = self._as_query(query)
        if built.pivot_op_id is None:
            raise EngineError(f"query {built.name!r} has no sharing pivot to advise on")
        if cpu_skew is not None and cpu_skew < 1:
            raise EngineError(f"cpu_skew must be >= 1, got {cpu_skew}")
        signature = built.pivot_signature
        spec, pivot_id = self._profile(signature, built)
        profile = self._outlook.profiles.get(signature)
        if (cpu_skew is not None and profile is not None
                and profile.cpu_skew != cpu_skew):
            self._outlook.profiles[signature] = replace(profile, cpu_skew=cpu_skew)
        adjusted = self._outlook.adjusted_spec(signature, spec, pivot_id, group_size)
        advisor = ShareAdvisor(processors=self.config.processors, threshold=self.threshold)
        group = [adjusted.relabeled(f"{built.name}#{i}") for i in range(group_size)]
        decision = advisor.evaluate(group, pivot_id)
        self._audit_decision(
            "advisor",
            "share" if decision.share else "solo",
            built,
            group_size,
            decision=decision,
        )
        return decision

    def _profile(self, signature: str, query: Query) -> tuple[QuerySpec, str]:
        """CPU-profile one operation (cached by pivot signature).

        Profiling runs on dedicated simulators with *no* resource
        layer, so the fitted ``(w, s)`` are warm/CPU parameters; the
        outlook layers projected I/O and spill terms on top per
        decision — the PR-2 recipe, now automatic.
        """
        cached = self._specs.get(signature)
        if cached is not None:
            return cached
        profiler = QueryProfiler(
            self.catalog,
            costs=self.config.cost_model,
            page_rows=self.config.page_rows,
            queue_capacity=self.config.queue_capacity,
        )
        profile = profiler.profile(query.plan, query.pivot_op_id, label=query.name)
        spec = profile.to_query_spec()
        self._specs[signature] = (spec, query.pivot_op_id)
        pivot_node = query.plan.find(query.pivot_op_id)
        # Resource profile: the pivot subtree's dominant base scan
        # feeds the I/O projection; the *whole plan's* estimated
        # stateful working set feeds the spill projection (a sort
        # above the pivot still competes for this query's work_mem).
        scans_below = [n for n in pivot_node.walk() if n.kind == "scan"]
        if scans_below:
            table = max(
                scans_below,
                key=lambda n: len(self.catalog.table(n.params["table"])),
            ).params["table"]
            pages = self.catalog.table(table).page_count(self.config.page_rows)
        else:
            table, pages = "", 0
        self._outlook.profiles[signature] = ResourceProfile(
            table=table,
            pages=pages,
            work_pages=estimate_work_pages(
                query.plan, self.catalog, self.config.page_rows
            ),
        )
        return self._specs[signature]

    def __repr__(self) -> str:
        return (
            f"Session({len(self.catalog)} tables, "
            f"{self.config.processors} processors, now={self.now:.6g})"
        )
