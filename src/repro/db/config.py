"""Runtime configuration: one frozen value object wires the engine.

Before the facade, every caller hand-assembled ``Simulator`` +
``BufferPool`` + ``MemoryBroker`` + ``ScanShareManager`` +
``spill_prefetch_depth`` and had to re-learn the invariants the engine
enforces (manager's pool is the engine's pool, broker sizing, prefetch
inheritance). :class:`RuntimeConfig` replaces that with a declarative
description — *what resources exist* — and derives the component
graph deterministically through the same
:func:`~repro.engine.wiring.resolve_storage` rules the engine applies,
so the invariants hold by construction.

Presets name the three machine shapes the experiments care about:

``laptop``
    A small cold-storage box: 2 processors, a 256-page pool with the
    scan-aware eviction policy, 32 pages of ``work_mem``, cooperative
    scans with prefetch and a 16-page drift bound (auto group
    windows), and the I/O-aware cost calibration.
``cmp32``
    The paper's 32-way CMP with a memory-resident working set: a large
    pool, ample ``work_mem``, no I/O charges (the seed calibration).
``unbounded``
    The seed configuration: 8 processors, no storage governance at
    all. The engine behaves exactly as in PR 0.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from repro.engine.costs import DEFAULT_COST_MODEL, IO_AWARE_COST_MODEL, CostModel
from repro.engine.memory import MemoryBroker
from repro.engine.wiring import resolve_storage
from repro.errors import EngineError
from repro.storage.buffer import BufferPool
from repro.storage.page import DEFAULT_PAGE_ROWS
from repro.storage.shared_scan import ScanShareManager
from repro.storage.tenant_pool import TenantPartitionedPool, TenantShare

__all__ = ["RuntimeConfig", "PRESETS"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Declarative description of one engine runtime.

    Attributes
    ----------
    work_mem:
        Operator working-memory budget in pages (``None`` = ungoverned:
        no :class:`~repro.engine.memory.MemoryBroker`, nothing spills).
    pool_pages:
        Buffer-pool capacity in pages (``None`` = no pool unless
        ``work_mem`` forces one into existence for spill files).
    pool_policy:
        Eviction policy name (``lru`` / ``clock`` / ``mru`` / ``scan``).
    prefetch_depth:
        Cooperative-scan read-ahead. ``None`` disables cooperative
        scans entirely (no :class:`ScanShareManager`); an int >= 0
        attaches a manager with that elevator prefetch depth.
    drift_bound:
        Maximum pages any consumer of a shared elevator scan may lag
        behind its group's head (``None`` = unbounded: a straggler
        silently falls behind and degrades to private reads).
        Requires cooperative scans (``prefetch_depth``).
    group_windows:
        How a drift violation is answered: ``False`` throttles the
        head (pause physical reads until the convoy closes up),
        ``True`` splits the convoy into two elevator groups, and
        ``"auto"`` chooses per violation by the manager's
        split-vs-throttle cost rule. Requires ``drift_bound``.
    spill_prefetch_depth:
        Read-ahead for spill read-back; ``None`` inherits the scan
        manager's depth (the engine's own inheritance rule).
    page_rows:
        Tuples per *storage* page — the scan/pool/spill granularity.
    batch_size:
        Tuples per exchanged :class:`~repro.engine.packet.RowBatch`
        between stages. ``None`` (default) inherits ``page_rows``, the
        classic one-batch-per-page pipeline; a larger batch amortizes
        per-batch host overhead, a smaller one tightens pipelining.
        Changing it changes flush boundaries and therefore the
        simulated timeline — it is a *modeled* knob, not a host-only
        one.
    vectorize:
        Run operators on the columnar batch fast path (default). With
        ``False`` every operator takes its row-at-a-time reference
        path — same rows, same simulated timeline, slower on the host;
        kept as the differential-testing oracle.
    processors:
        Simulated hardware contexts of the session's machine.
    contention:
        Optional power-law contention exponent ``kappa`` for the
        session's simulator (Section 4.1.4): busying ``b`` contexts
        yields only ``b ** kappa`` contexts' worth of effective
        compute. ``None`` (default) keeps the contention-free model.
        The same exponent feeds the session's share-vs-parallelize
        projections, so the policy prices the slowdown the simulator
        will actually apply.
    dop:
        Default intra-query degree of parallelism for this session's
        queries (``1`` = serial, the default). A query-level
        ``QueryBuilder.parallel(n)`` overrides it per query; the
        session's routing only parallelizes when the projection says
        it beats sharing (see ``Session.run_all``). Plans with no
        parallelizable region fall back to serial execution.
    cost_model:
        Per-tuple/per-page cost calibration.
    queue_capacity:
        Bounded-buffer depth between stages.
    tenants:
        Optional per-tenant buffer-pool partitioning: a tuple of
        :class:`~repro.storage.tenant_pool.TenantShare` dividing
        ``pool_pages`` into hard per-tenant quotas (the open-system
        service tier's isolation knob). Requires ``pool_pages`` and
        the ``lru`` pool policy; shares must sum to at most
        ``pool_pages`` — the remainder becomes the implicit shared
        partition for spill pages and unowned tables.
    trace:
        Attach a :class:`~repro.obs.trace.Tracer` flight recorder to
        the session's simulator and storage components. Off by
        default: a detached tracer costs one pointer check per emit
        site and records nothing; enabled, every task lifecycle edge
        and storage event is recorded in deterministic order
        (``Session.tracer``), without changing any simulated outcome.
    perf:
        Attach a :class:`~repro.obs.perf.WallProfiler` to the
        session's simulator and engine — the *wall-clock* counterpart
        of ``trace``: per-operator host time and rows/s, plus the
        simulated-work vs harness-overhead decomposition
        (``Session.perf()``). Same cost discipline (one pointer test
        per hook site when off) and, like the tracer, it never
        changes a simulated outcome — only host time is observed.

    Examples
    --------
    Configs are frozen values: start from a preset, refine with
    :meth:`with_`, and let :meth:`build_storage` derive a coherent
    component set (the same wiring rules the engine enforces):

    >>> from repro.db import RuntimeConfig
    >>> config = RuntimeConfig.preset("laptop").with_(processors=4)
    >>> (config.processors, config.pool_pages, config.drift_bound)
    (4, 256, 16)
    >>> pool, memory, scans, spill_depth = config.build_storage()
    >>> scans.pool is pool and memory.pool is pool
    True
    >>> spill_depth == config.prefetch_depth
    True

    Incoherent combinations fail at construction, not at run time:

    >>> RuntimeConfig(prefetch_depth=2)  # cooperative scans, no pool
    Traceback (most recent call last):
        ...
    repro.errors.EngineError: cooperative scans (prefetch_depth) \
require pool_pages: elevator cursors read through a buffer pool

    The exchange batch size defaults to the storage page geometry and
    can be widened independently of it:

    >>> RuntimeConfig().effective_batch_size  # inherits page_rows
    64
    >>> RuntimeConfig.preset("cmp32").with_(batch_size=256).effective_batch_size
    256
    >>> RuntimeConfig(batch_size=0)
    Traceback (most recent call last):
        ...
    repro.errors.EngineError: batch_size must be >= 1, got 0
    """

    work_mem: Optional[int] = None
    pool_pages: Optional[int] = None
    pool_policy: str = "lru"
    prefetch_depth: Optional[int] = None
    drift_bound: Optional[int] = None
    group_windows: Union[bool, str] = False
    spill_prefetch_depth: Optional[int] = None
    page_rows: int = DEFAULT_PAGE_ROWS
    batch_size: Optional[int] = None
    vectorize: bool = True
    processors: int = 8
    contention: Optional[float] = None
    dop: int = 1
    cost_model: CostModel = DEFAULT_COST_MODEL
    queue_capacity: int = 4
    tenants: Optional[Tuple[TenantShare, ...]] = None
    trace: bool = False
    perf: bool = False

    def __post_init__(self) -> None:
        if self.tenants is not None and not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        if self.work_mem is not None and self.work_mem < 1:
            raise EngineError(f"work_mem must be >= 1 page, got {self.work_mem}")
        if self.pool_pages is not None and self.pool_pages < 1:
            raise EngineError(f"pool_pages must be >= 1, got {self.pool_pages}")
        if self.prefetch_depth is not None and self.prefetch_depth < 0:
            raise EngineError(f"prefetch_depth must be >= 0, got {self.prefetch_depth}")
        if self.batch_size is not None and self.batch_size < 1:
            raise EngineError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.processors < 1:
            raise EngineError(f"processors must be >= 1, got {self.processors}")
        if self.dop < 1:
            raise EngineError(f"dop must be >= 1, got {self.dop}")
        if self.contention is not None and not (0.0 < self.contention <= 1.0):
            raise EngineError(
                f"contention (kappa) must be in (0, 1], got {self.contention}"
            )
        if self.prefetch_depth is not None and self.pool_pages is None:
            raise EngineError(
                "cooperative scans (prefetch_depth) require pool_pages: "
                "elevator cursors read through a buffer pool"
            )
        if self.drift_bound is not None and self.drift_bound < 1:
            raise EngineError(f"drift_bound must be >= 1 page, got {self.drift_bound}")
        if self.drift_bound is not None and self.prefetch_depth is None:
            raise EngineError(
                "drift_bound governs cooperative scans: set prefetch_depth "
                "(>= 0) to attach a scan-share manager first"
            )
        if self.group_windows not in (False, True, "auto"):
            raise EngineError(
                f"group_windows must be False, True, or 'auto', "
                f"got {self.group_windows!r}"
            )
        if self.group_windows and self.drift_bound is None:
            raise EngineError(
                "group_windows needs a drift_bound: windows open when a "
                "consumer's lag crosses the bound"
            )
        if self.tenants is not None:
            if not self.tenants:
                raise EngineError("tenants must name at least one TenantShare")
            if self.pool_pages is None:
                raise EngineError(
                    "tenants partition the buffer pool: set pool_pages"
                )
            if self.pool_policy != "lru":
                raise EngineError(
                    "tenant partitions keep per-partition LRU order; "
                    f"pool_policy must be 'lru', got {self.pool_policy!r}"
                )
            total = sum(share.pages for share in self.tenants)
            if total > self.pool_pages:
                raise EngineError(
                    f"tenant shares sum to {total} pages but pool_pages "
                    f"is {self.pool_pages}"
                )

    @property
    def effective_batch_size(self) -> int:
        """The exchange batch size actually in force: ``batch_size``
        when set, otherwise the storage page geometry."""
        return self.batch_size if self.batch_size is not None else self.page_rows

    @classmethod
    def preset(cls, name: str) -> "RuntimeConfig":
        """Look up a named preset (``laptop`` / ``cmp32`` / ``unbounded``)."""
        try:
            return PRESETS[name]
        except KeyError:
            raise EngineError(f"unknown preset {name!r}; available: {sorted(PRESETS)}") from None

    def with_(self, **changes) -> "RuntimeConfig":
        """A copy with the given fields replaced (presets as bases)."""
        return replace(self, **changes)

    def build_storage(
        self,
    ) -> Tuple[
        Optional[BufferPool],
        Optional[MemoryBroker],
        Optional[ScanShareManager],
        int,
    ]:
        """Materialize one fresh, coherent storage-component set.

        Components are created in dependency order (pool, then broker
        bound to it, then manager over it) and passed through
        :func:`~repro.engine.wiring.resolve_storage` — the same
        normalization the engine applies — so a config can never
        produce a component set the engine would reject.
        """
        pool: Optional[BufferPool]
        if self.tenants is not None:
            pool = TenantPartitionedPool(
                self.pool_pages, self.tenants, policy=self.pool_policy
            )
        elif self.pool_pages is not None:
            pool = BufferPool(self.pool_pages, self.pool_policy)
        else:
            pool = None
        memory = MemoryBroker(self.work_mem) if self.work_mem is not None else None
        scans = (
            ScanShareManager(
                pool,
                prefetch_depth=self.prefetch_depth,
                drift_bound=self.drift_bound,
                group_windows=self.group_windows,
            )
            if self.prefetch_depth is not None
            else None
        )
        return resolve_storage(pool, memory, scans, self.spill_prefetch_depth)


PRESETS = {
    "laptop": RuntimeConfig(
        work_mem=32,
        pool_pages=256,
        pool_policy="scan",
        prefetch_depth=2,
        drift_bound=16,
        group_windows="auto",
        processors=2,
        cost_model=IO_AWARE_COST_MODEL,
    ),
    "cmp32": RuntimeConfig(
        work_mem=512,
        pool_pages=4096,
        pool_policy="lru",
        processors=32,
        cost_model=DEFAULT_COST_MODEL,
    ),
    "unbounded": RuntimeConfig(),
}
