"""Unified per-query results from a session run.

Before the facade, reading out one run meant touching four objects:
the :class:`~repro.engine.packet.QueryHandle` (rows, timestamps), the
simulator (makespan), the buffer pool and the memory broker (resource
counters), plus the policy's decision record. :class:`QueryResult`
carries all of it: the rows, the simulated latency, the sharing
verdict that routed the query, and the merged
:class:`~repro.engine.stats.ResourceReport` snapshotted when its batch
finished (grant notes, spill stall/overlap split, hit rates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.decision import ShareDecision
from repro.engine.stats import ResourceReport
from repro.obs.metrics import render_stall_table, stall_breakdown
from repro.storage.schema import Schema

__all__ = ["QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """Everything one submitted query produced.

    ``resources`` is the session-wide resource snapshot taken when the
    query's batch drained — cumulative counters, shared by every query
    of the batch (the pool and broker are session-global). ``decision``
    is the model verdict that routed the query (``None`` when routing
    was forced or trivially solo). ``makespan`` is the session clock
    when the query's batch drained; it is cumulative across batches
    (equal to the batch's own makespan only on a session's first
    batch), while ``latency`` is always this query's own response
    time.

    Examples
    --------
    >>> from repro.db import Database
    >>> from repro.storage import Catalog, DataType, Schema
    >>> catalog = Catalog()
    >>> table = catalog.create("t", Schema([("k", DataType.INT)]))
    >>> table.insert_many([(i,) for i in range(4)])
    >>> session = Database.open(catalog, "unbounded")
    >>> result = session.run(session.table("t", columns=["k"]),
    ...                      label="probe")
    >>> (result.label, len(result.rows), result.shared)
    ('probe', 4, False)
    >>> result.latency == result.finished_at - result.submitted_at
    True
    >>> result.resources.render()   # the seed config governs nothing
    'no resource governance attached'
    """

    label: str
    name: str
    schema: Schema
    rows: list[tuple[Any, ...]]
    submitted_at: float
    finished_at: float
    shared: bool
    group_size: int
    decision: Optional[ShareDecision]
    resources: ResourceReport
    makespan: float
    # Flat metrics snapshot at batch drain (session-cumulative, from
    # the session's MetricsRegistry); None on results minted before
    # the registry existed (hand-built results in tests).
    metrics: Optional[dict] = None
    # The audit records whose routing covered this submission.
    audit: tuple = ()
    # Per-operator wall-clock profiles at batch drain (hottest first,
    # session-cumulative like every other counter); None unless the
    # session was opened with RuntimeConfig(perf=True). Entries are
    # :class:`~repro.obs.perf.OpProfile` values.
    perf: Optional[tuple] = None

    @property
    def hot_operator(self) -> Optional[str]:
        """The operator the host spent most wall time in (``None``
        without profiling or before any slice ran)."""
        if not self.perf:
            return None
        return self.perf[0].op

    @property
    def latency(self) -> float:
        """Simulated response time of this query."""
        return self.finished_at - self.submitted_at

    def grant_notes(self, owner: str) -> dict:
        """Operator-reported grant facts (e.g. ``sort_runs``)."""
        return self.resources.grant_notes(owner)

    @property
    def drift_throttle_stall(self) -> float:
        """Head-pause cost the drift bound charged in this query's
        batch (session-cumulative, like every resource counter)."""
        return self.resources.drift_throttle_stall

    @property
    def scan_sharing(self) -> tuple:
        """Per-table elevator share/drift statistics at batch drain
        (:class:`~repro.storage.shared_scan.TableScanStats`)."""
        return self.resources.scans

    @property
    def stalls(self) -> dict:
        """The session's cpu / io / drift_throttle / queue_block time
        decomposition at batch drain (empty without metrics)."""
        return stall_breakdown(self.metrics) if self.metrics else {}

    def render(self) -> str:
        verdict = "shared" if self.shared else "solo"
        text = (
            f"{self.label}: {len(self.rows)} rows in {self.latency:.0f} "
            f"sim-units ({verdict}, group of {self.group_size})"
        )
        if self.decision is not None:
            text += f"; predicted Z={self.decision.benefit:.2f}"
        if self.metrics:
            text += "\n" + render_stall_table(self.metrics)
        return text

    def __repr__(self) -> str:
        return (
            f"QueryResult({self.label!r}, rows={len(self.rows)}, "
            f"latency={self.latency:.6g}, "
            f"{'shared' if self.shared else 'solo'})"
        )
