"""repro.db — the Session/Database facade over the staged engine.

The canonical way to use the library::

    from repro.db import Database, RuntimeConfig
    from repro.engine.expressions import col, lt

    session = Database.open(catalog, RuntimeConfig.preset("laptop"))
    q = (session.table("lineitem")
                .where(lt(col("l_quantity"), 24.0))
                .select("l_orderkey", "l_extendedprice"))
    for _ in range(8):
        session.submit(q)
    results = session.run_all()   # the session decides share-vs-solo

:class:`RuntimeConfig` wires pool + broker + scan manager + prefetch
deterministically (the invariants the low-level
:class:`~repro.engine.engine.Engine` checks hold by construction);
:class:`Session` groups submissions by pivot signature and consults
the configured sharing policy — by default a live
Section-4-model-plus-resource-outlook advisor — before launching;
:class:`~repro.db.result.QueryResult` carries rows, simulated latency,
the sharing verdict, and the merged resource report. ``Engine``
remains public as the low-level layer underneath.
"""

from repro.db.builder import Query, QueryBuilder
from repro.db.config import PRESETS, RuntimeConfig
from repro.db.result import QueryResult
from repro.db.session import Database, Session

__all__ = [
    "Database",
    "Session",
    "RuntimeConfig",
    "PRESETS",
    "Query",
    "QueryBuilder",
    "QueryResult",
]
