"""Figure 1: sharing the TPC-H Q6 scan vs. never sharing.

"A different number of concurrent clients (from one to 48) submit a
simple data warehousing query that is dominated by a scan on a large,
in-memory table (query 6) ... for more than one core, work sharing is
harmful for this specific workload."

The experiment measures, for each processor count in {1, 2, 8, 32} and
each client count, the speedup of shared over unshared execution of m
identical Q6 instances. Expected shape: the 1-CPU line rises toward
~1.8-2x; every other line falls below 1 and the 32-CPU line collapses
toward ~0.1 (the paper's "10x performance difference").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.common import (
    DEFAULT_SCALE_FACTOR,
    DEFAULT_SEED,
    PAPER_PROCESSOR_COUNTS,
    SpeedupSeries,
    shared_catalog,
    speedup_series,
)
from repro.experiments.report import ascii_chart, series_table

__all__ = ["Fig1Result", "run", "DEFAULT_CLIENTS"]

DEFAULT_CLIENTS = (1, 2, 4, 8, 16, 32, 48)


@dataclass(frozen=True)
class Fig1Result:
    series: tuple[SpeedupSeries, ...]

    def line(self, processors: int) -> SpeedupSeries:
        for s in self.series:
            if s.processors == processors:
                return s
        raise KeyError(processors)

    def render(self) -> str:
        chart = ascii_chart(
            {f"{s.processors}cpu": list(s.speedups) for s in self.series},
            x_values=list(self.series[0].clients),
        )
        return (
            "Figure 1 — speedup of sharing the Q6 scan vs never-share\n"
            + series_table(list(self.series))
            + "\n\n" + chart
        )


def run(
    clients: Sequence[int] = DEFAULT_CLIENTS,
    processor_counts: Sequence[int] = PAPER_PROCESSOR_COUNTS,
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    seed: int = DEFAULT_SEED,
) -> Fig1Result:
    catalog = shared_catalog(scale_factor, seed)
    series = tuple(
        speedup_series(catalog, "q6", n, clients) for n in processor_counts
    )
    return Fig1Result(series=series)


if __name__ == "__main__":
    print(run().render())
