"""Figure 2: measured sharing speedups, scan-heavy vs join-heavy.

Left panel: Q1 and Q6 sharing at the scan stage — speedups up to ~1.8x
on a uniprocessor, harmful as processors increase. Right panel: Q4 and
Q13 sharing at the join — "work sharing is always beneficial for the
join-heavy queries", with speedups growing with the client count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.common import (
    DEFAULT_SCALE_FACTOR,
    DEFAULT_SEED,
    PAPER_PROCESSOR_COUNTS,
    SpeedupSeries,
    shared_catalog,
    speedup_series,
)
from repro.experiments.report import series_table

__all__ = ["Fig2Result", "run", "SCAN_HEAVY", "JOIN_HEAVY", "DEFAULT_CLIENTS"]

SCAN_HEAVY = ("q1", "q6")
JOIN_HEAVY = ("q4", "q13")
DEFAULT_CLIENTS = (1, 2, 4, 8, 16, 32, 48)


@dataclass(frozen=True)
class Fig2Result:
    scan_heavy: tuple[SpeedupSeries, ...]
    join_heavy: tuple[SpeedupSeries, ...]

    def line(self, query: str, processors: int) -> SpeedupSeries:
        for s in self.scan_heavy + self.join_heavy:
            if s.query == query and s.processors == processors:
                return s
        raise KeyError((query, processors))

    def render(self) -> str:
        return (
            "Figure 2 (left) — scan-heavy sharing speedups\n"
            + series_table(list(self.scan_heavy))
            + "\n\nFigure 2 (right) — join-heavy sharing speedups\n"
            + series_table(list(self.join_heavy))
        )


def run(
    clients: Sequence[int] = DEFAULT_CLIENTS,
    processor_counts: Sequence[int] = PAPER_PROCESSOR_COUNTS,
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    seed: int = DEFAULT_SEED,
) -> Fig2Result:
    catalog = shared_catalog(scale_factor, seed)
    scan_series = tuple(
        speedup_series(catalog, name, n, clients)
        for name in SCAN_HEAVY
        for n in processor_counts
    )
    join_series = tuple(
        speedup_series(catalog, name, n, clients)
        for name in JOIN_HEAVY
        for n in processor_counts
    )
    return Fig2Result(scan_heavy=scan_series, join_heavy=join_series)


if __name__ == "__main__":
    print(run().render())
