"""Figure 6: always-share vs never-share vs model-guided policies.

A closed system of 20 clients submits a mix of Q1 (scan-heavy) and Q4
(join-heavy); the fraction of Q4 varies from 0% to 100%. Two machine
sizes: 2 processors (left panel) and 32 processors (right panel).

Paper's findings, which are the target shapes here:

* 2 CPUs: sharing is always beneficial, so always-share is best and
  the model-guided policy closely tracks it; never-share falls behind
  (and worsens) as the Q4 fraction rises.
* 32 CPUs: always-share collapses (the paper: 80 q/min vs never-share's
  165) because "the penalty for sharing the wrong queries outweighs
  the benefit of sharing the right ones"; the model-guided policy
  matches or beats both at every mix — the headline +20% over
  never-share and 2.5x over always-share on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.common import (
    DEFAULT_SCALE_FACTOR,
    DEFAULT_SEED,
    shared_catalog,
)
from repro.experiments.report import format_table
from repro.policies import AlwaysShare, ModelGuidedPolicy, NeverShare
from repro.profiling import QueryProfiler
from repro.tpch.queries import build
from repro.workload import WorkloadMix, run_closed_system

__all__ = ["Fig6Cell", "Fig6Result", "run", "DEFAULT_FRACTIONS"]

DEFAULT_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
# One simulated-time unit is one abstract cost unit; the scaling below
# renders throughput in "queries/min"-like magnitudes for readability.
THROUGHPUT_SCALE = 1e6


@dataclass(frozen=True)
class Fig6Cell:
    policy: str
    processors: int
    q4_fraction: float
    throughput: float
    utilization: float


@dataclass(frozen=True)
class Fig6Result:
    cells: tuple[Fig6Cell, ...]
    n_clients: int

    def throughput(self, policy: str, processors: int,
                   q4_fraction: float) -> float:
        for cell in self.cells:
            if (cell.policy == policy and cell.processors == processors
                    and cell.q4_fraction == q4_fraction):
                return cell.throughput
        raise KeyError((policy, processors, q4_fraction))

    def panel(self, processors: int) -> Mapping[str, list[float]]:
        policies = ("always", "model", "never")
        return {
            policy: [
                cell.throughput for cell in self.cells
                if cell.policy == policy and cell.processors == processors
            ]
            for policy in policies
        }

    def average_ratio(self, processors: int, policy_a: str,
                      policy_b: str) -> float:
        """Mean over mixes of throughput(policy_a)/throughput(policy_b)."""
        a = self.panel(processors)[policy_a]
        b = self.panel(processors)[policy_b]
        ratios = [x / y for x, y in zip(a, b)]
        return sum(ratios) / len(ratios)

    def render(self) -> str:
        blocks = []
        processor_counts = sorted({cell.processors for cell in self.cells})
        fractions = sorted({cell.q4_fraction for cell in self.cells})
        for n in processor_counts:
            headers = ["q4 fraction", "always", "model", "never"]
            rows = []
            for frac in fractions:
                rows.append([
                    f"{frac:.0%}",
                    self.throughput("always", n, frac),
                    self.throughput("model", n, frac),
                    self.throughput("never", n, frac),
                ])
            blocks.append(
                f"Figure 6 — throughput by policy, {self.n_clients} clients "
                f"on {n} processors\n" + format_table(headers, rows)
                + (
                    f"\n  model vs never (avg): "
                    f"{self.average_ratio(n, 'model', 'never'):.2f}x;  "
                    f"model vs always (avg): "
                    f"{self.average_ratio(n, 'model', 'always'):.2f}x"
                )
            )
        return "\n\n".join(blocks)


def run(
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    processor_counts: Sequence[int] = (2, 32),
    n_clients: int = 20,
    warmup: float = 200_000.0,
    window: float = 800_000.0,
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    seed: int = DEFAULT_SEED,
) -> Fig6Result:
    # warmup/window are *simulated* time calibrated at scale 0.001;
    # service times grow linearly with the database, so the window
    # must stretch with it or a large scale starves the steady-state
    # measurement of completions entirely.
    stretch = scale_factor / 0.001
    warmup *= stretch
    window *= stretch
    catalog = shared_catalog(scale_factor, seed)
    profiler = QueryProfiler(catalog)
    specs = {}
    for name in ("q1", "q4"):
        query = build(name, catalog)
        profile = profiler.profile(query.plan, query.pivot, label=name)
        specs[name] = (profile.to_query_spec(), query.pivot)

    cells: list[Fig6Cell] = []
    for processors in processor_counts:
        for fraction in fractions:
            mix = WorkloadMix.two_way("q1", "q4", fraction, seed=seed)
            for policy in (AlwaysShare(), ModelGuidedPolicy(specs),
                           NeverShare()):
                result = run_closed_system(
                    catalog, policy, mix,
                    n_clients=n_clients, processors=processors,
                    warmup=warmup, window=window,
                )
                cells.append(
                    Fig6Cell(
                        policy=policy.name,
                        processors=processors,
                        q4_fraction=fraction,
                        throughput=result.throughput * THROUGHPUT_SCALE,
                        utilization=result.utilization,
                    )
                )
    return Fig6Result(cells=tuple(cells), n_clients=n_clients)


if __name__ == "__main__":
    print(run().render())
