"""fig_server: open-system sharing — win, straggler factory, and the
load point where one flips into the other.

Every closed-system figure (1, 2, 6) asks "does sharing help a fixed
batch?"; this experiment asks the deployed-system version: a
:class:`~repro.server.Server` takes a seeded Poisson stream of Q6
arrivals at rate ``r × (1/S)`` (``S`` = one query's solo service
time), with queue-depth admission control, under three sharing
policies — always, never, and model-guided — on two machines (2 and 8
processors). Reported per cell: goodput (completions within the
arrival horizon per unit time), p50/p99 response time, and sheds.

The shapes the paper predicts, translated to the load axis:

* **Light load, any machine**: sharing is a *straggler factory* —
  always-share convoys same-operation arrivals behind in-flight
  groups, inflating p99 well above never-share's, while goodput is
  identical (an open system's throughput is the arrival rate whenever
  stable). Sharing buys nothing and costs tail latency.
* **Overload, few cores**: the flip. Pivot multiplexing collapses the
  pending queue's CPU into one pass, so always-share *raises
  sustainable goodput* past never-share — which, launching everything
  solo, thrashes the two contexts and collapses. Here sharing wins
  goodput *and* tail latency simultaneously.
* **Overload, many cores**: no flip. Eight contexts absorb the same
  offered load solo (goodput tracks arrivals); always-share still
  convoys and caps goodput at roughly the 2-core figure — sharing is
  a straggler factory at *every* load point on an amply parallel
  machine, the Figure 2 collapse restated in open-system terms.
* **The model arm** decides per prospective group size and tracks the
  winning envelope: never-share's latency at light load, the sharing
  capacity win under few-core overload — it *finds* the crossover
  without being told the load.

``crossover_rate`` reports the measured flip point: the smallest
swept rate at which always-share's goodput beats never-share's by
more than 10%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.db import Database, RuntimeConfig
from repro.experiments.common import DEFAULT_SEED, shared_catalog
from repro.experiments.report import format_table
from repro.policies import AlwaysShare, ModelGuidedPolicy, NeverShare
from repro.profiling import QueryProfiler
from repro.server import QueueDepthBound, Server
from repro.tpch.queries import build
from repro.workload import WorkloadMix

__all__ = [
    "ServerCell",
    "FigServerResult",
    "run",
    "DEFAULT_RATE_MULTIPLES",
    "DEFAULT_PROCESSOR_COUNTS",
]

# Arrival rates in multiples of 1/S (S = solo service time): from half
# the single-server capacity to deep overload.
DEFAULT_RATE_MULTIPLES = (0.5, 1.0, 2.0, 4.0, 8.0)
DEFAULT_PROCESSOR_COUNTS = (2, 8)
# The open-system experiments run at a smaller scale than the closed
# ones: a cell submits hundreds of arrivals, not twenty clients.
SERVER_SCALE_FACTOR = 0.0005
QUEUE_BOUND = 32
GOODPUT_FLIP_MARGIN = 1.10


@dataclass(frozen=True)
class ServerCell:
    """One (policy, machine, rate) measurement."""

    policy: str
    processors: int
    rate_multiple: float
    goodput: float  # completions-in-horizon per service time S
    p50: float  # response-time quantiles in units of S
    p99: float
    submitted: int
    completed: int
    shed: int
    max_group_size: int


@dataclass(frozen=True)
class FigServerResult:
    cells: tuple[ServerCell, ...]
    service_time: float
    rate_multiples: tuple[float, ...]
    processor_counts: tuple[int, ...]

    def cell(
        self, policy: str, processors: int, rate_multiple: float
    ) -> ServerCell:
        for c in self.cells:
            if (
                c.policy == policy
                and c.processors == processors
                and c.rate_multiple == rate_multiple
            ):
                return c
        raise KeyError((policy, processors, rate_multiple))

    def crossover_rate(self, processors: int) -> Optional[float]:
        """The smallest swept rate where always-share's goodput beats
        never-share's by more than the flip margin — the measured
        load point where sharing turns from straggler factory to win.
        ``None`` when sharing never wins on this machine."""
        for rate in self.rate_multiples:
            always = self.cell("always", processors, rate)
            never = self.cell("never", processors, rate)
            if never.goodput > 0 and (
                always.goodput > GOODPUT_FLIP_MARGIN * never.goodput
            ):
                return rate
        return None

    def render(self) -> str:
        blocks = []
        for n in self.processor_counts:
            headers = [
                "rate (1/S)", "policy", "goodput (1/S)", "p50 (S)",
                "p99 (S)", "shed", "max group",
            ]
            rows = []
            for rate in self.rate_multiples:
                for policy in ("always", "model", "never"):
                    c = self.cell(policy, n, rate)
                    rows.append([
                        f"{rate:g}", policy, f"{c.goodput:.2f}",
                        f"{c.p50:.2f}", f"{c.p99:.2f}",
                        f"{c.shed}/{c.submitted}", c.max_group_size,
                    ])
            crossover = self.crossover_rate(n)
            verdict = (
                f"sharing wins goodput from rate {crossover:g}/S"
                if crossover is not None
                else "sharing never wins goodput on this machine"
            )
            blocks.append(
                f"fig_server — open-system serving on {n} processors "
                f"(S = {self.service_time:g} sim units)\n"
                + format_table(headers, rows)
                + f"\n  {verdict}"
            )
        return "\n\n".join(blocks)


def _solo_service_time(catalog, query, processors: int) -> float:
    """One query's solo makespan on an otherwise idle machine."""
    session = Database(catalog, RuntimeConfig(processors=processors)).session()
    result = session.run(
        _as_facade_query(query), label="calibrate", share=False
    )
    return result.finished_at - result.submitted_at


def _as_facade_query(query):
    from repro.db.builder import Query

    return Query(plan=query.plan, pivot_op_id=query.pivot, name=query.name)


def run(
    rate_multiples: Sequence[float] = DEFAULT_RATE_MULTIPLES,
    processor_counts: Sequence[int] = DEFAULT_PROCESSOR_COUNTS,
    horizon_services: float = 60.0,
    drain_services: float = 20.0,
    scale_factor: float = SERVER_SCALE_FACTOR,
    seed: int = DEFAULT_SEED,
    arrival_seed: int = 5,
) -> FigServerResult:
    catalog = shared_catalog(scale_factor, seed)
    query = build("q6", catalog)
    queries = {"q6": query}
    mix = WorkloadMix.single("q6")

    profiler = QueryProfiler(catalog)
    profile = profiler.profile(query.plan, query.pivot, label="q6")
    specs = {"q6": (profile.to_query_spec(), query.pivot)}

    # Calibrate S on the smaller machine; rates are multiples of 1/S.
    service = _solo_service_time(catalog, query, min(processor_counts))
    horizon = horizon_services * service
    drain = drain_services * service

    cells: list[ServerCell] = []
    for processors in processor_counts:
        config = RuntimeConfig(processors=processors)
        for rate_multiple in rate_multiples:
            rate = rate_multiple / service
            for policy_name, policy in (
                ("always", AlwaysShare()),
                ("model", ModelGuidedPolicy(specs)),
                ("never", NeverShare()),
            ):
                server = Server.open(
                    catalog,
                    config,
                    policy=policy,
                    admission=QueueDepthBound(QUEUE_BOUND),
                    attach_inflight=False,
                    keep_rows=False,
                )
                report = server.serve(
                    mix,
                    queries,
                    arrival_rate=rate,
                    horizon=horizon,
                    drain=drain,
                    seed=arrival_seed,
                )
                cells.append(
                    ServerCell(
                        policy=policy_name,
                        processors=processors,
                        rate_multiple=rate_multiple,
                        goodput=report.goodput * service,
                        p50=report.latency.p50 / service,
                        p99=report.latency.p99 / service,
                        submitted=report.submitted,
                        completed=report.completed,
                        shed=report.shed,
                        max_group_size=report.max_group_size,
                    )
                )
    return FigServerResult(
        cells=tuple(cells),
        service_time=service,
        rate_multiples=tuple(rate_multiples),
        processor_counts=tuple(processor_counts),
    )


if __name__ == "__main__":
    print(run().render())
