"""Figure 4: model-predicted sensitivity sweeps (Section 6).

Three panels over the Figure-3 baseline query (bottom p=10, pivot
w=6 / s=1, top p=10):

* left — available processing power n in {1, 4, 8, 12, 16, 24, 32};
* center — the pivot's per-consumer output cost s in
  {0, .25, .5, 1, 2, 4} on a 32-core machine;
* right — the fraction of work below the pivot, moving 0..5 balanced
  p=8 stages below it on an 8-core machine (28%..98% eliminated).

All three panels are pure model evaluations — no engine runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.sensitivity import (
    SweepResult,
    staged_query,
    sweep_output_cost,
    sweep_processors,
    sweep_work_below_pivot,
    work_eliminated_fraction,
)
from repro.experiments.report import format_table

__all__ = ["Fig4Result", "run", "DEFAULT_CLIENTS"]

DEFAULT_CLIENTS = tuple(range(1, 41))


@dataclass(frozen=True)
class Fig4Result:
    processors: SweepResult
    output_cost: SweepResult
    work_below: SweepResult

    def render(self) -> str:
        blocks = []
        for title, sweep, key_fmt in (
            ("Figure 4 (left) — Z vs clients by processor count",
             self.processors, lambda v: f"{int(v)}cpu"),
            ("Figure 4 (center) — Z vs clients by pivot output cost s "
             "(32 cpus)", self.output_cost, lambda v: f"s={v:g}"),
            ("Figure 4 (right) — Z vs clients by stages below pivot "
             "(8 cpus)", self.work_below,
             lambda v: f"{int(v)}/5 ({work_eliminated_fraction(staged_query(int(v)), 'pivot'):.0%})"),
        ):
            keys = sorted(sweep.series)
            headers = ["clients"] + [key_fmt(k) for k in keys]
            rows = [
                [m] + [sweep.series[k][i] for k in keys]
                for i, m in enumerate(sweep.clients)
            ]
            blocks.append(title + "\n" + format_table(headers, rows))
        return "\n\n".join(blocks)


def run(clients: Sequence[int] = DEFAULT_CLIENTS) -> Fig4Result:
    return Fig4Result(
        processors=sweep_processors(clients=clients),
        output_cost=sweep_output_cost(clients=clients),
        work_below=sweep_work_below_pivot(clients=clients),
    )


if __name__ == "__main__":
    print(run().render())
