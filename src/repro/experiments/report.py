"""Plain-text rendering of experiment results.

The paper's figures are line charts; a terminal reproduction prints
the same series as aligned tables (one row per client count, one
column per line — what EXPERIMENTS.md records) and, for a quick visual
read, as ASCII line charts (:func:`ascii_chart`).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.obs.metrics import render_stall_table

__all__ = ["format_table", "series_table", "ascii_chart", "stall_table"]


def stall_table(snapshot: Mapping[str, float]) -> str:
    """The cpu/io/drift_throttle/queue_block breakdown of a metrics
    snapshot, in the one canonical format every consumer shares
    (:func:`repro.obs.metrics.render_stall_table`). Feed it
    ``session.metrics().snapshot()`` or ``QueryResult.metrics``."""
    return render_stall_table(snapshot)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Align columns; floats are rendered with three significant
    decimals, everything else via ``str``."""
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([
            f"{value:.3f}" if isinstance(value, float) else str(value)
            for value in row
        ])
    widths = [
        max(len(line[i]) for line in rendered)
        for i in range(len(rendered[0]))
    ]
    lines = []
    for index, line in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence,
    height: int = 12,
    marker_line: float | None = 1.0,
) -> str:
    """Plot several y-series over a shared x-axis as an ASCII chart.

    Each series gets a distinct glyph (its legend index); overlapping
    points show the later series. ``marker_line`` draws a horizontal
    guide (the Z = 1 break-even line by default).
    """
    if not series:
        return "(no data)"
    if height < 3:
        raise ValueError(f"height must be >= 3, got {height}")
    n_points = len(x_values)
    for name, values in series.items():
        if len(values) != n_points:
            raise ValueError(
                f"series {name!r} has {len(values)} points, x-axis has "
                f"{n_points}"
            )
    all_values = [v for values in series.values() for v in values]
    if marker_line is not None:
        all_values.append(marker_line)
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0

    def row_of(value: float) -> int:
        return round((value - lo) / (hi - lo) * (height - 1))

    glyphs = "ox*+#@%&"
    grid = [[" "] * n_points for _ in range(height)]
    if marker_line is not None and lo <= marker_line <= hi:
        marker_row = row_of(marker_line)
        for x in range(n_points):
            grid[marker_row][x] = "-"
    for index, (name, values) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, value in enumerate(values):
            grid[row_of(value)][x] = glyph

    lines = []
    for row_index in range(height - 1, -1, -1):
        label = lo + (hi - lo) * row_index / (height - 1)
        lines.append(f"{label:>8.2f} |" + "".join(grid[row_index]))
    lines.append(" " * 9 + "+" + "-" * n_points)
    axis = "".join(
        str(x)[-1] if isinstance(x, (int, float)) else "."
        for x in x_values
    )
    lines.append(" " * 10 + axis)
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def series_table(series_list, value_label: str = "Z") -> str:
    """Render SpeedupSeries-like objects sharing one client axis."""
    if not series_list:
        return "(no data)"
    clients = series_list[0].clients
    headers = ["clients"] + [
        f"{s.query}@{s.processors}cpu" for s in series_list
    ]
    rows = []
    for i, m in enumerate(clients):
        rows.append([m] + [s.speedups[i] for s in series_list])
    return format_table(headers, rows)
