"""How wrong is the model? Auditing projections against measurements.

The paper validates its analytical model against measured speedups in
aggregate (Figure 5). The decision audit trail added with ``repro.obs``
lets us ask the sharper per-decision question: for *every* routing
decision a session makes, how far was the projected completion rate of
the chosen arm from what the simulator then measured?

This driver re-runs the fig_mem Part B consolidation flip through
audited sessions — ``m`` tenants submit the identical scan+aggregate
with ``share=None``, so the built-in advisor decides, its record lands
in ``Session.audit_log()``, and ``run_all`` joins each record with the
measured group latency and physical-read delta:

* **cold** — empty pool, the advisor projects the unshared tenants'
  ``io_page`` bill and says *share*;
* **warm** — prewarmed pool, the I/O term vanishes and the same
  advisor says *solo* (the scan-serialization result);
* **cold+drift** — cooperative scans with a drift bound and a declared
  consumer skew: the attach benefit is discounted by projected drift
  before the decision.

Every routing record must come back joined, and the per-cell
mean absolute projection error quantifies the model's calibration in
each regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.db import Database, RuntimeConfig
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.fig_mem import (
    DEFAULT_POOL_PAGES,
    FLIP_COSTS,
    FLIP_ROWS,
    FLIP_TABLE,
    _flip_catalog,
    _flip_query,
)
from repro.obs.audit import AuditRecord

__all__ = ["AuditCell", "FigAuditResult", "run"]

DRIFT_SKEW = 4.0


@dataclass(frozen=True)
class AuditCell:
    """One audited flip cell: the routing records of one session."""

    name: str
    outcome: str
    records: tuple[AuditRecord, ...]
    unjoined: int
    mean_abs_error: Optional[float]
    table: str

    @property
    def all_joined(self) -> bool:
        """Every routing record of the cell's batch was joined."""
        return self.unjoined == 0 and bool(self.records)


def _run_cell(
    name: str,
    catalog,
    config: RuntimeConfig,
    tenants: int,
    warm: bool,
    cpu_skew: Optional[float] = None,
) -> AuditCell:
    session = Database.open(catalog, config)
    if warm:
        session.prewarm(FLIP_TABLE)
    query = _flip_query(session, FLIP_TABLE)
    if cpu_skew is not None:
        # Declaring skew goes through advise(), which appends its own
        # (never-joined) advisor record before any routing happens.
        session.advise(query, tenants, cpu_skew=cpu_skew)
    pre_routing = len(session.audit_log())
    for t in range(tenants):
        session.submit(query, label=f"tenant{t}")
    session.run_all()
    routed = session.audit_log().records[pre_routing:]
    joined = tuple(r for r in routed if r.joined)
    errors = [
        abs(r.projection_error)
        for r in joined
        if r.projection_error is not None
    ]
    return AuditCell(
        name=name,
        outcome=routed[0].outcome if routed else "?",
        records=joined,
        unjoined=len(routed) - len(joined),
        mean_abs_error=sum(errors) / len(errors) if errors else None,
        table=session.audit_log().render(joined),
    )


@dataclass(frozen=True)
class FigAuditResult:
    cells: tuple[AuditCell, ...]
    tenants: int
    processors: int

    def cell(self, name: str) -> AuditCell:
        for cell in self.cells:
            if cell.name == name:
                return cell
        raise KeyError(name)

    def all_joined(self) -> bool:
        """Every routing decision of every cell carries a measurement."""
        return all(cell.all_joined for cell in self.cells)

    def decision_flipped(self) -> bool:
        return (self.cell("cold").outcome == "share"
                and self.cell("warm").outcome == "solo")

    def render(self) -> str:
        blocks = [
            f"Decision audit — projected vs measured rates, fig_mem flip "
            f"({self.tenants} tenants on {self.processors} processors)"
        ]
        for cell in self.cells:
            error = (
                f"{cell.mean_abs_error:.1%}"
                if cell.mean_abs_error is not None
                else "n/a"
            )
            blocks.append(
                f"[{cell.name}] outcome={cell.outcome}, "
                f"joined={len(cell.records)}, unjoined={cell.unjoined}, "
                f"mean |projection error|={error}\n{cell.table}"
            )
        blocks.append(
            f"all routing decisions joined: {self.all_joined()}; "
            f"decision flipped cold->warm: {self.decision_flipped()}"
        )
        return "\n\n".join(blocks)


def run(
    tenants: int = 8,
    processors: int = 4,
    pool_pages: int = DEFAULT_POOL_PAGES,
    base_rows: int = FLIP_ROWS,
    seed: int = DEFAULT_SEED,
) -> FigAuditResult:
    catalog = _flip_catalog(base_rows, tenants, seed)
    plain = RuntimeConfig(
        pool_pages=pool_pages, processors=processors, cost_model=FLIP_COSTS,
    )
    drifted = plain.with_(
        prefetch_depth=2, drift_bound=16, group_windows="auto",
    )
    cells = (
        _run_cell("cold", catalog, plain, tenants, warm=False),
        _run_cell("warm", catalog, plain, tenants, warm=True),
        _run_cell(
            "cold+drift", catalog, drifted, tenants, warm=False,
            cpu_skew=DRIFT_SKEW,
        ),
    )
    return FigAuditResult(cells=cells, tenants=tenants, processors=processors)


if __name__ == "__main__":
    print(run().render())
