"""Grant-governed external sort: identical answers at every budget.

``fig_mem`` established the memory-governance story for hash state
(the spilling hybrid join and aggregate); this experiment closes it
for the last stop-and-go operator, the sort, and for the read-back
half of spilling in general:

**Part A — work_mem sweep.** One sort query runs under shrinking
memory grants. At every budget the output is *identical* to the
unbounded in-memory sort — same rows, same order, same tie order — so
order-sensitive consumers (``limit`` top-N is checked in the sweep)
cannot tell the difference. What changes is cost: smaller grants cut
more sorted runs, need more recursive merge passes (the classic
external-sort arithmetic, reported per point), and pay more spill and
read-back I/O, so the makespan degrades *monotonically* as the grant
shrinks — a graceful slope, not a cliff.

**Part B — prefetched spill read-back.** The merge phase re-reads its
runs through :class:`~repro.storage.spill_cursor.SpillCursor`s, one
sequential prefetch pipeline per run. At a fixed (small) budget, any
read-ahead depth > 0 strictly beats depth 0: the merge's per-page CPU
drains the next spill pages' ``io_page`` cost, converting synchronous
stall into overlap — the same FIFO disk model the cooperative scans
use, now applied to operator cleanup I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.db import Database, RuntimeConfig
from repro.engine import CostModel, limit, scan, sort
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.report import format_table
from repro.storage import Catalog, DataType, Schema
from repro.storage.page import DEFAULT_PAGE_ROWS

__all__ = [
    "SortPoint",
    "SpillPrefetchPoint",
    "FigSortResult",
    "run",
    "DEFAULT_WORK_MEMS",
    "DEFAULT_PREFETCH_DEPTHS",
]

SORT_TABLE = "sortstream"
SORT_ROWS = 6000
TOPN = 50
# Cold-storage calibration, as in fig_mem: a page fetch costs on the
# order of the CPU work of processing the page, a spill write slightly
# more (write amplification).
SORT_COSTS = CostModel(io_page=160.0, spill_page=200.0)
# One fits-in-memory budget, then budgets that strictly deepen the
# merge (1, 2, 3, 6 passes over ~94 data pages). Budgets that only
# change the *run length* at equal pass count (e.g. 64 vs 16 pages)
# do the same total spill work and differ only in buffer-pool luck,
# which is not the degradation axis this figure is about.
DEFAULT_WORK_MEMS = (128, 16, 8, 4, 2)
DEFAULT_PREFETCH_DEPTHS = (0, 1, 2, 4)


def _sort_catalog(base_rows: int, seed: int) -> Catalog:
    """A table with a duplicate-heavy group column and a unique one.

    Sorting ``(g asc, k desc)`` exercises mixed directions *and* tie
    handling: every ``g`` group holds many rows, so a merge that broke
    stability would reorder them visibly.
    """
    catalog = Catalog()
    schema = Schema([("g", DataType.INT), ("k", DataType.INT), ("v", DataType.FLOAT)])
    rows = []
    state = seed & 0x7FFFFFFF or 1
    for i in range(base_rows):
        # Park-Miller LCG: deterministic, independent of PYTHONHASHSEED.
        state = (state * 48271) % 2147483647
        rows.append((state % 23, i, state / 2147483647.0))
    catalog.create(SORT_TABLE, schema).insert_many(rows)
    return catalog


SORT_KEYS = (("g", True), ("k", False))


def _sort_plan(catalog: Catalog, top_n: int | None = None):
    plan = sort(
        scan(catalog, SORT_TABLE, columns=["g", "k", "v"], op_id="sort_scan"),
        list(SORT_KEYS),
        op_id="big_sort",
    )
    if top_n is not None:
        plan = limit(plan, top_n, op_id="topn")
    return plan


def _run_once(
    catalog: Catalog,
    work_mem: int | None,
    pool_pages: int,
    processors: int,
    page_rows: int,
    prefetch_depth: int = 0,
    top_n: int | None = None,
):
    """Execute the sort plan once; returns (rows, makespan, result)."""
    config = RuntimeConfig(
        work_mem=work_mem,
        pool_pages=pool_pages,
        spill_prefetch_depth=prefetch_depth,
        page_rows=page_rows,
        processors=processors,
        cost_model=SORT_COSTS,
    )
    session = Database.open(catalog, config)
    budget = "unbounded" if work_mem is None else f"wm{work_mem}"
    result = session.run(_sort_plan(catalog, top_n), label=f"sort@{budget}/pf{prefetch_depth}")
    return result.rows, result.makespan, result


# ----------------------------------------------------------------------
# Part A: work_mem sweep
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SortPoint:
    """One work_mem budget of the external-sort sweep."""

    work_mem: int
    makespan: float
    sort_runs: int
    merge_passes: int
    spilled_pages: int
    spill_pages_read: int
    identical: bool
    topn_identical: bool


def _measure_budget(
    catalog: Catalog,
    work_mem: int,
    pool_pages: int,
    processors: int,
    page_rows: int,
    reference_rows: list,
    reference_topn: list,
) -> SortPoint:
    rows, makespan, result = _run_once(catalog, work_mem, pool_pages, processors, page_rows)
    topn_rows, _, _ = _run_once(catalog, work_mem, pool_pages, processors, page_rows, top_n=TOPN)
    report = result.resources
    notes = report.grant_notes("big_sort")
    return SortPoint(
        work_mem=work_mem,
        makespan=makespan,
        sort_runs=notes.get("sort_runs", 0),
        merge_passes=notes.get("merge_passes", 0),
        spilled_pages=notes.get("spilled_pages", 0),
        spill_pages_read=report.spill_pages_read,
        identical=rows == reference_rows,
        topn_identical=topn_rows == reference_topn,
    )


# ----------------------------------------------------------------------
# Part B: prefetched spill read-back
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpillPrefetchPoint:
    """One read-ahead depth at a fixed small budget."""

    depth: int
    makespan: float
    read_stall: float
    read_overlapped: float
    prefetch_issued: int
    identical: bool


def _measure_prefetch(
    catalog: Catalog,
    depth: int,
    work_mem: int,
    pool_pages: int,
    processors: int,
    page_rows: int,
    reference_rows: list,
) -> SpillPrefetchPoint:
    rows, makespan, result = _run_once(
        catalog,
        work_mem,
        pool_pages,
        processors,
        page_rows,
        prefetch_depth=depth,
    )
    report = result.resources
    return SpillPrefetchPoint(
        depth=depth,
        makespan=makespan,
        read_stall=report.spill_read_stall,
        read_overlapped=report.spill_read_overlapped,
        prefetch_issued=report.spill_prefetch_issued,
        identical=rows == reference_rows,
    )


# ----------------------------------------------------------------------
# The figure
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FigSortResult:
    sweep: tuple[SortPoint, ...]
    prefetch: tuple[SpillPrefetchPoint, ...]
    prefetch_work_mem: int
    processors: int

    def answers_identical(self) -> bool:
        """Every budget (and every prefetch depth) reproduced the
        unbounded sort bit for bit, top-N order included."""
        sweep_ok = all(p.identical and p.topn_identical for p in self.sweep)
        return sweep_ok and all(p.identical for p in self.prefetch)

    def degradation_monotone(self) -> bool:
        """Shrinking work_mem never makes the sort *faster*."""
        ordered = sorted(self.sweep, key=lambda p: p.work_mem, reverse=True)
        spans = [p.makespan for p in ordered]
        return all(a <= b for a, b in zip(spans, spans[1:]))

    def spill_monotone(self) -> bool:
        """Runs, passes and spilled pages grow as the grant shrinks."""
        ordered = sorted(self.sweep, key=lambda p: p.work_mem, reverse=True)
        for field in ("sort_runs", "merge_passes", "spilled_pages"):
            values = [getattr(p, field) for p in ordered]
            if not all(a <= b for a, b in zip(values, values[1:])):
                return False
        return True

    def prefetch_strictly_helps(self) -> bool:
        """Any depth > 0 strictly beats depth 0 on both makespan and
        read-back stall (False when the sweep lacks either side)."""
        base = next((p for p in self.prefetch if p.depth == 0), None)
        rest = [p for p in self.prefetch if p.depth > 0]
        if base is None or not rest:
            return False
        return all(p.makespan < base.makespan and p.read_stall < base.read_stall for p in rest)

    def render(self) -> str:
        headers = [
            "work_mem",
            "makespan",
            "runs",
            "merge passes",
            "spilled pages",
            "pages re-read",
            "identical",
            "top-N identical",
        ]
        rows = [
            [
                p.work_mem,
                f"{p.makespan:.0f}",
                p.sort_runs,
                p.merge_passes,
                p.spilled_pages,
                p.spill_pages_read,
                "yes" if p.identical else "NO",
                "yes" if p.topn_identical else "NO",
            ]
            for p in self.sweep
        ]
        sweep_title = "External sort — work_mem sweep (grant-governed runs + k-way merge)"
        sweep_summary = (
            f"  answers identical everywhere: {self.answers_identical()};"
            f"  degradation monotone: {self.degradation_monotone()};"
            f"  spill growth monotone: {self.spill_monotone()}"
        )
        blocks = [f"{sweep_title}\n{format_table(headers, rows)}\n{sweep_summary}"]

        headers = [
            "prefetch k",
            "makespan",
            "read stall",
            "read overlapped",
            "prefetches",
            "identical",
        ]
        rows = [
            [
                p.depth,
                f"{p.makespan:.0f}",
                f"{p.read_stall:.0f}",
                f"{p.read_overlapped:.0f}",
                p.prefetch_issued,
                "yes" if p.identical else "NO",
            ]
            for p in self.prefetch
        ]
        prefetch_title = f"Spill read-back prefetch — work_mem {self.prefetch_work_mem}"
        prefetch_summary = (
            f"  prefetch > 0 strictly faster read-back: {self.prefetch_strictly_helps()}"
        )
        blocks.append(f"{prefetch_title}\n{format_table(headers, rows)}\n{prefetch_summary}")
        return "\n\n".join(blocks)


def run(
    work_mems: Sequence[int] = DEFAULT_WORK_MEMS,
    prefetch_depths: Sequence[int] = DEFAULT_PREFETCH_DEPTHS,
    processors: int = 4,
    base_rows: int = SORT_ROWS,
    page_rows: int = DEFAULT_PAGE_ROWS,
    pool_pages: int = 16,
    prefetch_work_mem: int = 4,
    seed: int = DEFAULT_SEED,
) -> FigSortResult:
    catalog = _sort_catalog(base_rows, seed)
    reference_rows, _, _ = _run_once(catalog, None, pool_pages, processors, page_rows)
    reference_topn, _, _ = _run_once(catalog, None, pool_pages, processors, page_rows, top_n=TOPN)

    sweep = tuple(
        _measure_budget(
            catalog,
            work_mem,
            pool_pages,
            processors,
            page_rows,
            reference_rows,
            reference_topn,
        )
        for work_mem in work_mems
    )
    prefetch = tuple(
        _measure_prefetch(
            catalog,
            depth,
            prefetch_work_mem,
            pool_pages,
            processors,
            page_rows,
            reference_rows,
        )
        for depth in prefetch_depths
    )
    return FigSortResult(
        sweep=sweep,
        prefetch=prefetch,
        prefetch_work_mem=prefetch_work_mem,
        processors=processors,
    )


if __name__ == "__main__":
    print(run().render())
