"""Figure 5: validating the model against engine measurements.

For every query in the suite and every processor count, the profiled
model's predicted speedup ``Z(m, n)`` is compared against the staged
engine's measured speedup. The paper reports maximum/average errors of
22%/5.7% for the scan-heavy queries and 30%/5.9% for the join-heavy
queries, and — the property that actually matters — that "the model's
recommendations on the benefits of sharing are nearly always correct"
as a binary decision.

The reproduction computes the same three statistics: per-class maximum
relative error, average relative error, and binary-decision agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.model import sharing_benefit
from repro.core.phases import PhasedQuery
from repro.experiments.common import (
    DEFAULT_SCALE_FACTOR,
    DEFAULT_SEED,
    PAPER_PROCESSOR_COUNTS,
    batch_speedup,
    shared_catalog,
)
from repro.experiments.report import format_table
from repro.profiling import QueryProfiler
from repro.tpch.queries import build

__all__ = ["ValidationPoint", "Fig5Result", "run", "DEFAULT_CLIENTS"]

DEFAULT_CLIENTS = (2, 4, 8, 16, 32, 48)
_DECISION_BAND = 0.10  # |Z - 1| below this is "indifferent", not a miss


@dataclass(frozen=True)
class ValidationPoint:
    query: str
    kind: str
    processors: int
    clients: int
    predicted: float
    measured: float
    predicted_phased: float = float("nan")

    @property
    def relative_error(self) -> float:
        return abs(self.predicted - self.measured) / self.measured

    @property
    def phased_relative_error(self) -> float:
        return abs(self.predicted_phased - self.measured) / self.measured

    @property
    def decision_agrees(self) -> bool:
        """Binary share/don't-share agreement, with an indifference
        band around Z = 1 where either decision costs almost nothing."""
        if abs(self.predicted - 1.0) < _DECISION_BAND or (
            abs(self.measured - 1.0) < _DECISION_BAND
        ):
            return True
        return (self.predicted > 1.0) == (self.measured > 1.0)


@dataclass(frozen=True)
class Fig5Result:
    points: tuple[ValidationPoint, ...]

    def points_for(self, kind: str) -> list[ValidationPoint]:
        return [p for p in self.points if p.kind == kind]

    def max_error(self, kind: str) -> float:
        return max(p.relative_error for p in self.points_for(kind))

    def avg_error(self, kind: str) -> float:
        pts = self.points_for(kind)
        return sum(p.relative_error for p in pts) / len(pts)

    def avg_phased_error(self, kind: str) -> float:
        """Average error of the Section 5.2 phase-aware predictions
        (a beyond-paper extension; the paper validates the simple
        fully-pipelined model only)."""
        pts = self.points_for(kind)
        return sum(p.phased_relative_error for p in pts) / len(pts)

    def decision_accuracy(self) -> float:
        return sum(p.decision_agrees for p in self.points) / len(self.points)

    def render(self) -> str:
        headers = ["query", "cpus", "clients", "predicted Z", "measured Z",
                   "err%"]
        rows = [
            [p.query, p.processors, p.clients, p.predicted, p.measured,
             100 * p.relative_error]
            for p in self.points
        ]
        summary = (
            f"\nscan-heavy: max err {100 * self.max_error('scan-heavy'):.1f}% "
            f"avg {100 * self.avg_error('scan-heavy'):.1f}%  "
            f"(paper: 22% / 5.7%)\n"
            f"join-heavy: max err {100 * self.max_error('join-heavy'):.1f}% "
            f"avg {100 * self.avg_error('join-heavy'):.1f}%  "
            f"(paper: 30% / 5.9%)\n"
            f"join-heavy with phase-aware model (extension): "
            f"avg {100 * self.avg_phased_error('join-heavy'):.1f}%\n"
            f"binary share/don't-share agreement: "
            f"{100 * self.decision_accuracy():.0f}%"
        )
        return (
            "Figure 5 — model validation (predicted vs measured Z)\n"
            + format_table(headers, rows)
            + summary
        )


def run(
    clients: Sequence[int] = DEFAULT_CLIENTS,
    processor_counts: Sequence[int] = PAPER_PROCESSOR_COUNTS,
    queries: Sequence[str] = ("q1", "q6", "q4", "q13"),
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    seed: int = DEFAULT_SEED,
) -> Fig5Result:
    catalog = shared_catalog(scale_factor, seed)
    profiler = QueryProfiler(catalog)
    points: list[ValidationPoint] = []
    for name in queries:
        query = build(name, catalog)
        profile = profiler.profile(query.plan, query.pivot, label=name)
        spec = profile.to_query_spec()
        phased = PhasedQuery(profile.to_query_spec(mark_blocking=True))
        for n in processor_counts:
            for m in clients:
                group = [spec.relabeled(f"{name}#{i}") for i in range(m)]
                predicted = sharing_benefit(group, query.pivot, n,
                                            closed_system=True)
                predicted_phased = phased.sharing_benefit(query.pivot, m, n)
                measured = batch_speedup(catalog, query, m, n)
                points.append(
                    ValidationPoint(
                        query=name,
                        kind=query.kind,
                        processors=n,
                        clients=m,
                        predicted=predicted,
                        measured=measured,
                        predicted_phased=predicted_phased,
                    )
                )
    return Fig5Result(points=tuple(points))


if __name__ == "__main__":
    print(run().render())
