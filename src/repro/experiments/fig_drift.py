"""Drift-bounded elevator scans: to throttle, to split, or to regret.

Cooperative (elevator) scans promise N concurrent consumers one
shared physical pass — but the promise assumes the convoy stays
together. This experiment breaks that assumption with
**consumer-speed skew**: a convoy of identical scans whose consumers
pay very different per-page CPU (an expensive fused predicate,
``cost_factor``), swept across a skew axis, under the three drift
policies of :class:`~repro.storage.shared_scan.ScanShareManager`:

``unbounded``
    ``drift_bound=None`` — the historical behavior. Stragglers
    silently fall behind the head; once their lag exceeds what the
    pool retains, their reads degrade to private cold misses. With a
    mutually-spread slow cluster the physical read bill climbs from
    ~1 pass toward one pass *per consumer* — the "to share or not to
    share" regret: the sharing the attach-benefit projection promised
    never happens.
``throttle``
    A drift bound pauses the head (off-processor, the
    ``drift_throttle`` stall category) until the convoy closes up:
    the physical bill stays ~1 pass at every skew, but every fast
    rider's latency degrades toward the slowest consumer's — the
    head-latency price of a single pass.
``windows``
    The convoy splits into two elevator groups: fast riders keep
    (most of) their pace while the stragglers share a second, slower
    window, span-coupled to the lead so it is not evicted into a
    private pass. Group windows cannot beat the physics of a pool
    smaller than the table — the trailing window's shared re-read is
    its floor, so its bill sits in one-to-two-pass territory rather
    than within 1.5x of a single pass — but at high skew it *Pareto
    dominates* the other two arms: strictly fewer physical reads
    than unbounded drift and strictly lower fast-rider latency than
    throttling.

Every arm and cell returns identical row sets — drift governance
reorders and re-prices the work, never the answer.

**Part B — the decision flip.** The
:class:`~repro.policies.resource_outlook.ResourceOutlook` feeds
ModelGuided the projected attach benefit of cooperative scans; the
undiscounted projection assumes the convoy shares one pass, so it
tells a skewed convoy pivot-sharing is unnecessary — exactly the
regret above. With ``cpu_skew`` in the profile, the drift-discounted
benefit flips the decision to *share*, and measurement agrees: under
skew, the pivot-shared group (one scan, no drift possible) beats the
drifting solo convoy on makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.db import Database, Query, RuntimeConfig
from repro.engine import CostModel
from repro.engine.expressions import col, ge
from repro.engine.plan import filter_, scan
from repro.experiments.report import format_table
from repro.policies.model_guided import ModelGuidedPolicy
from repro.policies.resource_outlook import ResourceOutlook, ResourceProfile
from repro.profiling.profiler import QueryProfiler
from repro.storage import Catalog, DataType, Schema

__all__ = [
    "DriftPoint",
    "FlipResult",
    "FigDriftResult",
    "run",
    "DEFAULT_SKEWS",
    "ARMS",
]

DRIFT_TABLE = "driftstream"
DRIFT_ROWS = 1200
PAGE_ROWS = 25            # 48 pages
POOL_PAGES = 22           # < table: a straggler's lag can outrun residency
DRIFT_BOUND = 8
PREFETCH_DEPTH = 2
PROCESSORS = 12           # one context per stage: skew, not contention
# The flip is decided (and validated) in the paper's few-core regime:
# on many cores the model rightly keeps a multiplexed pivot solo even
# after the drift discount, so the regret cell sits at small n.
FLIP_PROCESSORS = 3
# Cold-storage calibration: a page fetch costs several pages of CPU.
DRIFT_COSTS = CostModel(io_page=400.0)
DEFAULT_SKEWS = (1, 4, 16, 64)
# The three drift policies: (arm name, drift_bound, group_windows).
ARMS = (
    ("unbounded", None, False),
    ("throttle", DRIFT_BOUND, False),
    ("windows", DRIFT_BOUND, True),
)
# Fast riders at unit speed plus a mutually-spread slow cluster:
# consumer i of the slow half pays skew * 2**i times the base
# predicate cost, so the stragglers drift apart from the head *and
# from each other* (a lockstep slow cluster would implicitly convoy
# through the pool and hide the degradation).
FAST_CONSUMERS = 3
SLOW_CONSUMERS = 3


def _drift_catalog(rows: int) -> Catalog:
    catalog = Catalog()
    schema = Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
    table = catalog.create(DRIFT_TABLE, schema)
    table.insert_many([(i, float(i % 97)) for i in range(rows)])
    return catalog


def _speeds(skew: int) -> list[float]:
    slow = [float(skew * (2 ** i)) for i in range(SLOW_CONSUMERS)]
    return [1.0] * FAST_CONSUMERS + slow


def _arm_config(drift_bound, group_windows) -> RuntimeConfig:
    return RuntimeConfig(
        pool_pages=POOL_PAGES,
        pool_policy="lru",
        prefetch_depth=PREFETCH_DEPTH,
        drift_bound=drift_bound,
        group_windows=group_windows,
        page_rows=PAGE_ROWS,
        processors=PROCESSORS,
        cost_model=DRIFT_COSTS,
    )


# ----------------------------------------------------------------------
# Part A: the skew sweep
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DriftPoint:
    """One (arm, skew) cell of the sweep."""

    arm: str
    skew: int
    table_pages: int
    physical_reads: int
    makespan: float
    fast_latency: float
    slow_latency: float
    max_lag: int
    splits: int
    merges: int
    throttle_stall: float
    drift_throttle_time: float
    identical_answers: bool

    @property
    def passes(self) -> float:
        """Physical reads over one table's pages (1.0 = the ideal)."""
        return self.physical_reads / self.table_pages


def _measure_arm(
    arm: str,
    drift_bound,
    group_windows,
    skew: int,
    reference_rows: list,
) -> DriftPoint:
    catalog = _drift_catalog(DRIFT_ROWS)
    pages = catalog.table(DRIFT_TABLE).page_count(PAGE_ROWS)
    session = Database.open(catalog, _arm_config(drift_bound, group_windows))
    for i, factor in enumerate(_speeds(skew)):
        query = (session.table(DRIFT_TABLE, columns=["k", "v"])
                 .where(ge(col("k"), 0))
                 .with_cost_factor(factor))
        # share=False: this figure is about sharing at the *storage*
        # layer (the elevator), not about pivot-merging the queries.
        session.submit(query, label=f"{arm}/c{i}", share=False)
    results = session.run_all()
    stats = session.scans.snapshot()[0]
    latencies = sorted(result.latency for result in results)
    identical = all(
        sorted(result.rows) == reference_rows for result in results
    )
    report = session.stages()
    return DriftPoint(
        arm=arm,
        skew=skew,
        table_pages=pages,
        physical_reads=stats.physical_reads,
        makespan=session.now,
        fast_latency=latencies[0],
        slow_latency=latencies[-1],
        max_lag=stats.max_lag,
        splits=stats.splits,
        merges=stats.merges,
        throttle_stall=stats.throttle_stall_cost,
        drift_throttle_time=sum(s.drift_throttle for s in report.stages),
        identical_answers=identical,
    )


# ----------------------------------------------------------------------
# Part B: the ModelGuided flip
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FlipResult:
    """Drift-discounted vs undiscounted advice, validated by measurement.

    The two policies see the *same* CPU profile and the same live
    resource state (a cold pool behind an unbounded-drift elevator);
    they differ only in the profile's ``cpu_skew``. ``naive_share``
    is the undiscounted verdict, ``drift_share`` the discounted one;
    the makespans measure both routings on the real skewed convoy.
    """

    group_size: int
    cpu_skew: float
    naive_share: bool
    drift_share: bool
    solo_makespan: float
    shared_makespan: float
    solo_reads: int
    shared_reads: int

    @property
    def flipped(self) -> bool:
        return self.naive_share != self.drift_share

    @property
    def drift_advice_correct(self) -> bool:
        """The discounted verdict matches the measured winner."""
        measured_share = self.shared_makespan < self.solo_makespan
        return self.drift_share == measured_share


def _flip_members(catalog: Catalog, skew: int) -> list[Query]:
    """One group: identical scan pivots under per-member skewed tops.

    The skewed work sits *above* the pivot (a ``filter`` with
    per-member ``cost_factor``), so the pivot subtrees stay
    byte-identical — mergeable by the engine — while the consumers
    drain the pivot at very different speeds.
    """
    members = []
    for i, factor in enumerate(_speeds(skew)):
        pivot = scan(catalog, DRIFT_TABLE, columns=["k", "v"],
                     op_id="pivot")
        plan = filter_(pivot, ge(col("k"), 0), op_id=f"skewtop{i}",
                       cost_factor=factor)
        members.append(Query(plan=plan, pivot_op_id="pivot",
                             name="driftq"))
    return members


def _measure_flip(skew: int) -> FlipResult:
    catalog = _drift_catalog(DRIFT_ROWS)
    pages = catalog.table(DRIFT_TABLE).page_count(PAGE_ROWS)
    members = _flip_members(catalog, skew)
    m = len(members)
    cpu_skew = max(_speeds(skew))

    # One CPU profile (warm, contention-free) for both policies.
    profiler = QueryProfiler(catalog, costs=DRIFT_COSTS,
                             page_rows=PAGE_ROWS)
    profile = profiler.profile(members[0].plan, "pivot", label="driftq")
    spec = profile.to_query_spec()
    specs = {"driftq": (spec, "pivot")}

    # Both outlooks watch the same cold, unbounded-drift storage set.
    _, _, scans, _ = _arm_config(None, False).build_storage()
    footprint = dict(table=DRIFT_TABLE, pages=pages)
    naive = ModelGuidedPolicy(specs, outlook=ResourceOutlook(
        {"driftq": ResourceProfile(**footprint)},
        costs=DRIFT_COSTS, scans=scans,
    ))
    drift_aware = ModelGuidedPolicy(specs, outlook=ResourceOutlook(
        {"driftq": ResourceProfile(**footprint, cpu_skew=cpu_skew)},
        costs=DRIFT_COSTS, scans=scans,
    ))
    naive_share = naive.should_share("driftq", m, FLIP_PROCESSORS)
    drift_share = drift_aware.should_share("driftq", m, FLIP_PROCESSORS)

    # Measure both routings on fresh cold sessions.
    def measure(share: bool):
        session = Database.open(
            catalog,
            _arm_config(None, False).with_(processors=FLIP_PROCESSORS),
        )
        for i, member in enumerate(_flip_members(catalog, skew)):
            session.submit(member, label=f"m{i}", share=share)
        session.run_all()
        return session.now, session.pool.stats.misses

    solo_makespan, solo_reads = measure(False)
    shared_makespan, shared_reads = measure(True)
    return FlipResult(
        group_size=m,
        cpu_skew=cpu_skew,
        naive_share=naive_share,
        drift_share=drift_share,
        solo_makespan=solo_makespan,
        shared_makespan=shared_makespan,
        solo_reads=solo_reads,
        shared_reads=shared_reads,
    )


# ----------------------------------------------------------------------
# The figure
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FigDriftResult:
    points: tuple[DriftPoint, ...]
    flip: FlipResult
    skews: tuple[int, ...]
    consumers: int

    def arm(self, arm: str, skew: int) -> DriftPoint:
        for point in self.points:
            if point.arm == arm and point.skew == skew:
                return point
        raise KeyError((arm, skew))

    @property
    def top_skew(self) -> int:
        return max(self.skews)

    # -- the claims the figure asserts ---------------------------------

    def answers_identical(self) -> bool:
        """Every arm, every cell: the row set never changes."""
        return all(point.identical_answers for point in self.points)

    def throttle_single_pass(self, bound: float = 1.5) -> bool:
        """Throttling restores ~1 physical pass at every skew."""
        return all(
            self.arm("throttle", skew).passes <= bound
            for skew in self.skews
        )

    def unbounded_degrades(self, floor: float = 2.5) -> bool:
        """Reads grow monotonically with skew, toward one pass per
        mutually-drifting consumer (>= ``floor`` passes at the top)."""
        reads = [self.arm("unbounded", s).physical_reads
                 for s in self.skews]
        monotone = all(a <= b for a, b in zip(reads, reads[1:]))
        return monotone and self.arm("unbounded", self.top_skew).passes >= floor

    def windows_grouped_bound(self, bound: float = 2.75) -> bool:
        """Group windows hold the grouped-scan bound (two windows ->
        at most ~two shared passes plus split churn) at every cell."""
        return all(
            self.arm("windows", skew).passes <= bound
            for skew in self.skews
        )

    def throttle_costs_head_latency(self) -> bool:
        """The single pass is bought with fast-rider latency."""
        top = self.top_skew
        return (self.arm("throttle", top).fast_latency
                > 2 * self.arm("unbounded", top).fast_latency)

    def windows_dominate_at_high_skew(self) -> bool:
        """At the top skew, windows Pareto-dominate: strictly fewer
        physical reads than unbounded drift *and* strictly lower
        fast-rider latency than throttling."""
        top = self.top_skew
        windows = self.arm("windows", top)
        return (
            windows.physical_reads < self.arm("unbounded", top).physical_reads
            and windows.fast_latency < self.arm("throttle", top).fast_latency
        )

    def decision_flips(self) -> bool:
        """The drift discount flips ModelGuided to the measured-correct
        side that the undiscounted projection gets wrong."""
        flip = self.flip
        return (
            flip.flipped
            and flip.drift_share
            and flip.drift_advice_correct
            and not flip.naive_share
        )

    def render(self) -> str:
        headers = ["arm", "skew", "reads", "passes", "max lag",
                   "split/merge", "throttle stall", "fast lat",
                   "slow lat", "identical"]
        rows = [
            [p.arm, p.skew, p.physical_reads, f"{p.passes:.2f}x",
             p.max_lag, f"{p.splits}/{p.merges}",
             f"{p.throttle_stall:.0f}", f"{p.fast_latency:.0f}",
             f"{p.slow_latency:.0f}",
             "yes" if p.identical_answers else "NO"]
            for p in self.points
        ]
        blocks = [
            f"Drift governance under consumer-speed skew "
            f"({self.consumers} consumers, "
            f"pool {POOL_PAGES}/{self.points[0].table_pages} pages, "
            f"bound {DRIFT_BOUND})\n"
            + format_table(headers, rows)
            + f"\n  identical answers everywhere: {self.answers_identical()}"
            f"\n  throttle stays within 1.5x of one pass: "
            f"{self.throttle_single_pass()}"
            f"\n  unbounded drift degrades toward a pass per straggler: "
            f"{self.unbounded_degrades()}"
            f"\n  windows hold the grouped-scan bound: "
            f"{self.windows_grouped_bound()}"
            f"\n  windows Pareto-dominate at top skew: "
            f"{self.windows_dominate_at_high_skew()}"
        ]

        flip = self.flip
        blocks.append(
            "ModelGuided flip — drift-discounted attach benefit "
            f"(m={flip.group_size}, cpu_skew={flip.cpu_skew:.0f})\n"
            f"  undiscounted advice: "
            f"{'share' if flip.naive_share else 'solo'};  "
            f"drift-discounted advice: "
            f"{'share' if flip.drift_share else 'solo'}\n"
            f"  measured: solo makespan {flip.solo_makespan:.0f} "
            f"({flip.solo_reads} reads) vs shared "
            f"{flip.shared_makespan:.0f} ({flip.shared_reads} reads)\n"
            f"  discount flips the decision to the measured winner: "
            f"{self.decision_flips()}"
        )
        return "\n\n".join(blocks)


def run(skews: Sequence[int] = DEFAULT_SKEWS,
        flip_skew: int = 16) -> FigDriftResult:
    skews = tuple(sorted(set(skews)))
    catalog = _drift_catalog(DRIFT_ROWS)
    reference_rows = sorted(catalog.table(DRIFT_TABLE).rows())
    points = []
    for skew in skews:
        for arm, drift_bound, group_windows in ARMS:
            points.append(_measure_arm(
                arm, drift_bound, group_windows, skew, reference_rows,
            ))
    flip = _measure_flip(flip_skew)
    return FigDriftResult(
        points=tuple(points),
        flip=flip,
        skews=skews,
        consumers=FAST_CONSUMERS + SLOW_CONSUMERS,
    )


if __name__ == "__main__":
    print(run().render())
