"""Cooperative scan sharing: one physical pass serves N scans.

The paper's pivot-sharing machinery merges queries *at submission*;
``fig_mem`` showed that once a buffer pool is attached, even unshared
identical scans convoy through it. This experiment exercises the
subsystem that makes the effect explicit and robust — the
:class:`~repro.storage.shared_scan.ScanShareManager`'s elevator
cursors — along three axes:

**Part A — attach sharing.** ``m`` identical scans of one table
arrive staggered in time. Independently (each scanning a private,
byte-identical replica: a private cold cache), they pay ``m`` full
passes of ``io_page``. Cooperatively, each arrival attaches to the
table's elevator cursor at its current position and wraps around, so
all ``m`` scans complete with ~one table's worth of physical reads —
and every consumer's row *set* is identical to its independent scan's
(the order rotates to the attach offset).

**Part B — async prefetch.** A single cold scan under increasing
prefetch depth: read-ahead overlaps the next pages' I/O with this
page's CPU work, so any depth > 0 strictly beats depth 0 (the
sequential-disk model saturates once the pipeline is covered).

**Part C — scan-aware eviction.** A table larger than the pool,
scanned twice. Under LRU the first pass flushes exactly the pages the
second pass needs first (zero reuse); the ``"scan"`` policy detects
the oversized footprint, switches that table to MRU victims, and the
second pass hits on the preserved prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.db import Database, RuntimeConfig, Session
from repro.engine import CostModel
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.report import format_table
from repro.storage import (
    Catalog,
    DataType,
    Schema,
    TableScanStats,
)
from repro.storage.page import DEFAULT_PAGE_ROWS

__all__ = [
    "SharePoint",
    "PrefetchPoint",
    "EvictionPoint",
    "FigScanResult",
    "run",
    "DEFAULT_CONSUMERS",
    "DEFAULT_STAGGERS",
    "DEFAULT_PREFETCH_DEPTHS",
]

SCAN_TABLE = "scanstream"
SCAN_ROWS = 6000
# Cold-storage calibration (as in fig_mem's flip): fetching a page
# costs a few times the CPU work of scanning it.
SCAN_COSTS = CostModel(io_page=400.0)
DEFAULT_CONSUMERS = (2, 4, 8)
# Arrival stagger as a fraction of one solo cold-scan makespan.
DEFAULT_STAGGERS = (0.0, 0.25, 0.75)
DEFAULT_PREFETCH_DEPTHS = (0, 1, 2, 4, 8)


def _scan_catalog(base_rows: int, replicas: int, seed: int) -> Catalog:
    """One common table plus byte-identical per-consumer replicas."""
    catalog = Catalog()
    schema = Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
    rows = []
    state = seed & 0x7FFFFFFF or 1
    for i in range(base_rows):
        # Park-Miller LCG: deterministic, independent of PYTHONHASHSEED.
        state = (state * 48271) % 2147483647
        rows.append((i, state / 2147483647.0))
    for name in [SCAN_TABLE] + [f"{SCAN_TABLE}__{t}" for t in range(replicas)]:
        catalog.create(name, schema).insert_many(rows)
    return catalog


def _staggered_scans(
    session: Session,
    table_names: Sequence[str],
    stagger: float,
) -> list:
    """Submit one scan per table name, the i-th delayed by i*stagger.

    Submissions are forced solo (``share=False``): this figure is
    about sharing at the *storage* layer (the elevator cursor), not
    about pivot-merging the queries. Returns the per-query results.
    """
    for i, name in enumerate(table_names):
        session.submit(session.table(name, columns=["k", "v"]),
                       label=f"c{i}", share=False, delay=i * stagger)
    return session.run_all()


def _solo_cold_makespan(catalog: Catalog, pages: int, processors: int) -> float:
    """One cold scan, no manager — the stagger unit of Part A."""
    session = Database.open(catalog, RuntimeConfig(
        pool_pages=pages * 2, processors=processors, cost_model=SCAN_COSTS,
    ))
    return session.run(session.table(SCAN_TABLE, columns=["k", "v"])).makespan


# ----------------------------------------------------------------------
# Part A: attach sharing under arrival stagger
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SharePoint:
    """One (consumers, stagger) cell of the sharing sweep."""

    consumers: int
    stagger_fraction: float
    table_pages: int
    cooperative_reads: int
    independent_reads: int
    makespan_cooperative: float
    makespan_independent: float
    identical_answers: bool
    max_attach_depth: int
    pages_per_read: float

    @property
    def io_ratio(self) -> float:
        """Cooperative physical reads over one table's pages."""
        return self.cooperative_reads / self.table_pages


def _measure_share_point(
    catalog: Catalog,
    consumers: int,
    stagger: float,
    stagger_fraction: float,
    processors: int,
    page_rows: int,
    prefetch_depth: int,
    reference_rows: list,
) -> tuple[SharePoint, TableScanStats]:
    pages = catalog.table(SCAN_TABLE).page_count(page_rows)

    # Cooperative: every consumer scans the common table through one
    # elevator cursor.
    session = Database.open(catalog, RuntimeConfig(
        pool_pages=pages * 2, prefetch_depth=prefetch_depth,
        page_rows=page_rows, processors=processors, cost_model=SCAN_COSTS,
    ))
    results = _staggered_scans(session, [SCAN_TABLE] * consumers, stagger)
    coop_makespan = session.now
    stats = session.scans.snapshot()[0]
    identical = len(results) == consumers and all(
        sorted(result.rows) == reference_rows for result in results
    )

    # Independent: consumer t scans its private replica — a private
    # cold cache, the model's no-cross-query-reuse baseline.
    replica_names = [f"{SCAN_TABLE}__{t}" for t in range(consumers)]
    session = Database.open(catalog, RuntimeConfig(
        pool_pages=pages * (consumers + 1), page_rows=page_rows,
        processors=processors, cost_model=SCAN_COSTS,
    ))
    _staggered_scans(session, replica_names, stagger)

    point = SharePoint(
        consumers=consumers,
        stagger_fraction=stagger_fraction,
        table_pages=pages,
        cooperative_reads=stats.physical_reads,
        independent_reads=session.pool.stats.misses,
        makespan_cooperative=coop_makespan,
        makespan_independent=session.now,
        identical_answers=identical,
        max_attach_depth=stats.max_attach_depth,
        pages_per_read=stats.pages_per_read,
    )
    return point, stats


# ----------------------------------------------------------------------
# Part B: prefetch depth on a single cold scan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PrefetchPoint:
    """One prefetch depth of the cold-scan sweep."""

    depth: int
    makespan: float
    io_stall_cost: float
    io_overlapped_cost: float
    scan_io_share: float


def _measure_prefetch(
    catalog: Catalog,
    depth: int,
    processors: int,
    page_rows: int,
) -> PrefetchPoint:
    pages = catalog.table(SCAN_TABLE).page_count(page_rows)
    session = Database.open(catalog, RuntimeConfig(
        pool_pages=pages * 2, prefetch_depth=depth, page_rows=page_rows,
        processors=processors, cost_model=SCAN_COSTS,
    ))
    query = session.table(SCAN_TABLE, columns=["k", "v"]).build()
    result = session.run(query, label=f"prefetch@{depth}")
    stats = session.scans.snapshot()[0]
    scan_op = query.plan.op_id
    return PrefetchPoint(
        depth=depth,
        makespan=result.makespan,
        io_stall_cost=stats.io_stall_cost,
        io_overlapped_cost=stats.io_overlapped_cost,
        scan_io_share=session.stages().stage(scan_op).io_share,
    )


# ----------------------------------------------------------------------
# Part C: scan-aware eviction on a table larger than the pool
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EvictionPoint:
    """Two passes over an oversized table under one eviction policy."""

    policy: str
    pool_pages: int
    table_pages: int
    second_pass_hits: int
    hit_rate: float


def _measure_eviction(
    catalog: Catalog,
    policy: str,
    processors: int,
    page_rows: int,
) -> EvictionPoint:
    pages = catalog.table(SCAN_TABLE).page_count(page_rows)
    pool_pages = max(2, pages // 2)
    session = Database.open(catalog, RuntimeConfig(
        pool_pages=pool_pages, pool_policy=policy, prefetch_depth=0,
        page_rows=page_rows, processors=processors, cost_model=SCAN_COSTS,
    ))
    query = session.table(SCAN_TABLE, columns=["k", "v"]).build()
    session.run(query, label="pass1")
    first_pass_hits = session.pool.stats.hits
    session.run(query, label="pass2")
    return EvictionPoint(
        policy=policy,
        pool_pages=pool_pages,
        table_pages=pages,
        second_pass_hits=session.pool.stats.hits - first_pass_hits,
        hit_rate=session.pool.stats.hit_rate,
    )


# ----------------------------------------------------------------------
# The figure
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FigScanResult:
    share: tuple[SharePoint, ...]
    prefetch: tuple[PrefetchPoint, ...]
    eviction: tuple[EvictionPoint, ...]
    scan_stats: TableScanStats
    processors: int

    def io_ratio_ok(self, bound: float = 1.2) -> bool:
        """Every cooperative sweep cell pays <= bound table passes."""
        return all(p.io_ratio <= bound for p in self.share)

    def answers_identical(self) -> bool:
        return all(p.identical_answers for p in self.share)

    def independent_pays_n_passes(self) -> bool:
        return all(
            p.independent_reads == p.consumers * p.table_pages
            for p in self.share
        )

    def prefetch_strictly_helps(self) -> bool:
        """Any prefetch depth > 0 strictly beats depth 0 (False when
        the sweep lacks the depth-0 baseline or any deeper point)."""
        base = next((p for p in self.prefetch if p.depth == 0), None)
        rest = [p for p in self.prefetch if p.depth > 0]
        if base is None or not rest:
            return False
        return all(p.makespan < base.makespan for p in rest)

    def eviction_point(self, policy: str) -> EvictionPoint:
        for point in self.eviction:
            if point.policy == policy:
                return point
        raise KeyError(policy)

    def scan_aware_eviction_wins(self) -> bool:
        return (self.eviction_point("scan").second_pass_hits
                > self.eviction_point("lru").second_pass_hits)

    def render(self) -> str:
        headers = ["m", "stagger", "coop reads", "indep reads",
                   "io ratio", "attach depth", "pages/read",
                   "coop makespan", "indep makespan", "identical"]
        rows = [
            [p.consumers, f"{p.stagger_fraction:.2f}", p.cooperative_reads,
             p.independent_reads, f"{p.io_ratio:.2f}x", p.max_attach_depth,
             f"{p.pages_per_read:.2f}", f"{p.makespan_cooperative:.0f}",
             f"{p.makespan_independent:.0f}",
             "yes" if p.identical_answers else "NO"]
            for p in self.share
        ]
        blocks = [
            "Cooperative scans — N staggered consumers, one elevator pass\n"
            + format_table(headers, rows)
            + f"\n  io ratio <= 1.2 everywhere: {self.io_ratio_ok()};"
            f"  answers identical: {self.answers_identical()}"
        ]

        headers = ["prefetch k", "makespan", "io stall", "io overlapped",
                   "scan io share"]
        rows = [
            [p.depth, f"{p.makespan:.0f}", f"{p.io_stall_cost:.0f}",
             f"{p.io_overlapped_cost:.0f}", f"{p.scan_io_share:.0%}"]
            for p in self.prefetch
        ]
        blocks.append(
            "Async prefetch — single cold scan\n"
            + format_table(headers, rows)
            + f"\n  prefetch > 0 strictly reduces makespan: "
            f"{self.prefetch_strictly_helps()}"
        )

        headers = ["policy", "pool/table pages", "2nd-pass hits", "hit rate"]
        rows = [
            [p.policy, f"{p.pool_pages}/{p.table_pages}",
             p.second_pass_hits, f"{p.hit_rate:.0%}"]
            for p in self.eviction
        ]
        blocks.append(
            "Scan-aware eviction — two passes over an oversized table\n"
            + format_table(headers, rows)
            + f"\n  scan-aware beats LRU on reuse: "
            f"{self.scan_aware_eviction_wins()}"
        )
        blocks.append("Cursor stats (last sweep cell): "
                      + self.scan_stats.render())
        return "\n\n".join(blocks)


def run(
    consumers: Sequence[int] = DEFAULT_CONSUMERS,
    staggers: Sequence[float] = DEFAULT_STAGGERS,
    prefetch_depths: Sequence[int] = DEFAULT_PREFETCH_DEPTHS,
    processors: int = 8,
    base_rows: int = SCAN_ROWS,
    page_rows: int = DEFAULT_PAGE_ROWS,
    sweep_prefetch_depth: int = 2,
    seed: int = DEFAULT_SEED,
) -> FigScanResult:
    catalog = _scan_catalog(base_rows, max(consumers), seed)
    pages = catalog.table(SCAN_TABLE).page_count(page_rows)
    solo = _solo_cold_makespan(catalog, pages, processors)
    reference_rows = sorted(catalog.table(SCAN_TABLE).rows())

    share = []
    last_stats = None
    for m in consumers:
        for fraction in staggers:
            point, last_stats = _measure_share_point(
                catalog, m, fraction * solo, fraction, processors,
                page_rows, sweep_prefetch_depth, reference_rows,
            )
            share.append(point)
    prefetch = tuple(
        _measure_prefetch(catalog, depth, processors, page_rows)
        for depth in prefetch_depths
    )
    eviction = tuple(
        _measure_eviction(catalog, policy, processors, page_rows)
        for policy in ("lru", "scan")
    )
    return FigScanResult(
        share=tuple(share),
        prefetch=prefetch,
        eviction=eviction,
        scan_stats=last_stats,
        processors=processors,
    )


if __name__ == "__main__":
    print(run().render())
