"""Experiment drivers — one module per paper figure.

* :mod:`repro.experiments.fig1` — Q6 sharing speedup vs clients/CPUs,
* :mod:`repro.experiments.fig2` — scan-heavy vs join-heavy speedups,
* :mod:`repro.experiments.fig4` — model sensitivity sweeps (Section 6),
* :mod:`repro.experiments.fig5` — model-vs-measured validation,
* :mod:`repro.experiments.fig6` — policy comparison in a closed system,
* :mod:`repro.experiments.fig_mem` — memory governance: spilling join
  sweep and the cold/warm sharing-decision flip,
* :mod:`repro.experiments.fig_scan` — cooperative scan sharing:
  elevator attach, async prefetch, scan-aware eviction,
* :mod:`repro.experiments.fig_drift` — drift-bounded elevator scans:
  throttle vs group windows under consumer-speed skew,
* :mod:`repro.experiments.fig_sort` — grant-governed external sort
  with prefetched spill read-back,
* :mod:`repro.experiments.fig_parallel` — share vs parallelize:
  exchange-partitioned fragments against pivot-shared groups, and the
  four-way policy's accuracy on the measured crossover,
* :mod:`repro.experiments.fig_server` — open-system serving: goodput
  and tail latency across arrival rates and sharing policies, and the
  measured load point where sharing flips from straggler factory to
  win,
* :mod:`repro.experiments.section4_example` — the Q6 worked example.

Run them via the ``repro-experiments`` CLI (``repro-experiments
list`` prints the registry) or the modules' ``python -m`` entry
points; ``docs/experiments.md`` documents every driver — the paper
claim it reproduces, its knobs, and how to read the output.
"""

from repro.experiments import (
    fig1,
    fig2,
    fig4,
    fig5,
    fig6,
    fig_drift,
    fig_mem,
    fig_parallel,
    fig_scan,
    fig_server,
    fig_sort,
    section4_example,
)

__all__ = [
    "fig1",
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "fig_drift",
    "fig_mem",
    "fig_parallel",
    "fig_scan",
    "fig_server",
    "fig_sort",
    "section4_example",
]
