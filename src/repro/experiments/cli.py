"""Command-line entry point: regenerate any paper figure.

Installed as ``repro-experiments``::

    repro-experiments list          # every registered experiment
    repro-experiments fig1          # Figure 1
    repro-experiments fig2 fig4     # several at once
    repro-experiments fig_mem       # memory-governance experiments
    repro-experiments fig_scan      # cooperative scan sharing
    repro-experiments fig_drift     # drift-bounded elevator scans
    repro-experiments fig_sort      # grant-governed external sort
    repro-experiments all           # everything (takes minutes)
    repro-experiments fig1 --quick  # reduced client counts

``--quick`` trims the client axes so each figure completes in seconds;
full runs use the paper's 1-48 client range.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, NamedTuple

from repro.experiments import (
    fig1,
    fig2,
    fig4,
    fig5,
    fig6,
    fig_audit,
    fig_drift,
    fig_mem,
    fig_parallel,
    fig_scan,
    fig_server,
    fig_sort,
    section4_example,
)

__all__ = ["main"]

_QUICK_CLIENTS = (1, 2, 4, 8, 16)
_QUICK_VALIDATION_CLIENTS = (2, 8, 16)


def _run_fig1(quick: bool) -> str:
    clients = _QUICK_CLIENTS if quick else fig1.DEFAULT_CLIENTS
    return fig1.run(clients=clients).render()


def _run_fig2(quick: bool) -> str:
    clients = _QUICK_CLIENTS if quick else fig2.DEFAULT_CLIENTS
    return fig2.run(clients=clients).render()


def _run_fig4(quick: bool) -> str:
    clients = tuple(range(1, 21)) if quick else fig4.DEFAULT_CLIENTS
    return fig4.run(clients=clients).render()


def _run_fig5(quick: bool) -> str:
    clients = _QUICK_VALIDATION_CLIENTS if quick else fig5.DEFAULT_CLIENTS
    return fig5.run(clients=clients).render()


def _run_fig6(quick: bool) -> str:
    fractions = (0.0, 0.5, 1.0) if quick else fig6.DEFAULT_FRACTIONS
    window = 400_000.0 if quick else 800_000.0
    return fig6.run(fractions=fractions, window=window).render()


def _run_fig_mem(quick: bool) -> str:
    work_mems = (16, 4) if quick else fig_mem.DEFAULT_WORK_MEMS
    tenants = 8 if quick else 16
    processors = 4 if quick else 8
    return fig_mem.run(work_mems=work_mems, tenants=tenants,
                       processors=processors).render()


def _run_fig_scan(quick: bool) -> str:
    consumers = (2, 4) if quick else fig_scan.DEFAULT_CONSUMERS
    staggers = (0.0, 0.5) if quick else fig_scan.DEFAULT_STAGGERS
    depths = (0, 2) if quick else fig_scan.DEFAULT_PREFETCH_DEPTHS
    return fig_scan.run(consumers=consumers, staggers=staggers,
                        prefetch_depths=depths).render()


def _run_fig_drift(quick: bool) -> str:
    # Quick mode keeps the top-skew cell: the degradation claims are
    # asserted there (mid-skew cells only show the trend).
    skews = (1, 64) if quick else fig_drift.DEFAULT_SKEWS
    return fig_drift.run(skews=skews).render()


def _run_fig_sort(quick: bool) -> str:
    work_mems = (128, 8, 2) if quick else fig_sort.DEFAULT_WORK_MEMS
    depths = (0, 2) if quick else fig_sort.DEFAULT_PREFETCH_DEPTHS
    return fig_sort.run(work_mems=work_mems, prefetch_depths=depths).render()


def _run_fig_parallel(quick: bool) -> str:
    # Quick mode keeps the corner cells: the crossover claims are
    # asserted at the extremes of the context/consumer axes.
    consumers = (2, 12) if quick else fig_parallel.DEFAULT_CONSUMERS
    dops = (1, 4) if quick else fig_parallel.DEFAULT_PARITY_DOPS
    return fig_parallel.run(consumers=consumers, parity_dops=dops).render()


def _run_fig_audit(quick: bool) -> str:
    # The flip needs the full tenant count; quick mode trims rows.
    base_rows = 3000 if quick else fig_audit.FLIP_ROWS
    return fig_audit.run(base_rows=base_rows).render()


def _run_fig_server(quick: bool) -> str:
    # Quick mode keeps the corner rates: the straggler-factory claim
    # (light load) and the few-core sharing win (overload) both live
    # at the extremes of the rate axis.
    rates = (1.0, 4.0, 8.0) if quick else fig_server.DEFAULT_RATE_MULTIPLES
    horizon = 40.0 if quick else 60.0
    return fig_server.run(rate_multiples=rates,
                          horizon_services=horizon).render()


def _run_section4(quick: bool) -> str:
    return section4_example.run().render()


class _Experiment(NamedTuple):
    runner: Callable[[bool], str]
    description: str


_EXPERIMENTS = {
    "fig1": _Experiment(_run_fig1, "Figure 1: sharing speedup vs clients, few cores"),
    "fig2": _Experiment(_run_fig2, "Figure 2: sharing turns harmful on many cores"),
    "fig4": _Experiment(_run_fig4, "Figure 4: model-predicted speedup surfaces"),
    "fig5": _Experiment(_run_fig5, "Figure 5: model vs measured validation"),
    "fig6": _Experiment(_run_fig6, "Figure 6: policy throughput across workload mixes"),
    "fig_audit": _Experiment(_run_fig_audit, "Decision audit: projected vs measured rates over the fig_mem flip"),
    "fig_mem": _Experiment(_run_fig_mem, "Memory governance: spilling join sweep + cold/warm sharing flip"),
    "fig_parallel": _Experiment(_run_fig_parallel, "Share vs parallelize: exchange-partitioned fragments + the four-way policy"),
    "fig_drift": _Experiment(_run_fig_drift, "Drift-bounded elevator scans: throttle vs group windows under consumer skew"),
    "fig_scan": _Experiment(_run_fig_scan, "Cooperative scans: elevator sharing, async prefetch, scan-aware eviction"),
    "fig_server": _Experiment(_run_fig_server, "Open-system serving: goodput/p99 across load, and the sharing flip point"),
    "fig_sort": _Experiment(_run_fig_sort, "External sort: grant-governed runs/merges + prefetched spill read-back"),
    "section4": _Experiment(_run_section4, "Section 4 worked example of the analytical model"),
}


def _render_list() -> str:
    width = max(len(name) for name in _EXPERIMENTS)
    lines = ["registered experiments:"]
    lines.extend(
        f"  {name:<{width}}  {exp.description}"
        for name, exp in sorted(_EXPERIMENTS.items())
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures from 'To Share or Not To Share?' "
                    "(VLDB 2007).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*sorted(_EXPERIMENTS), "all", "list"],
        help="which figures to regenerate ('list' prints the registry)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced client counts for a fast sanity run",
    )
    args = parser.parse_args(argv)

    if "list" in args.experiments:
        print(_render_list())
        if set(args.experiments) == {"list"}:
            return 0

    names = (
        sorted(_EXPERIMENTS) if "all" in args.experiments
        else [n for n in dict.fromkeys(args.experiments) if n != "list"]
    )
    for name in names:
        started = time.time()
        output = _EXPERIMENTS[name].runner(args.quick)
        elapsed = time.time() - started
        print(output)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
