"""Shared infrastructure for the experiment drivers.

Two measurement protocols, matching the paper:

* **Batch speedup** (Figures 1, 2, 5): ``m`` identical queries are
  submitted simultaneously; the speedup of sharing is the ratio of the
  independent-execution makespan to the shared-group makespan. This is
  the protocol the model predicts directly (all ``m`` queries present,
  one group).
* **Closed-system throughput** (Figure 6): ``N`` clients each keep one
  query outstanding, routed through a sharing policy; throughput is
  completions per time over a steady-state window
  (:mod:`repro.workload`).

A module-level catalog cache keeps the TPC-H database generation out
of the measured paths and shares one database across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.engine.costs import DEFAULT_COST_MODEL, CostModel
from repro.engine.engine import Engine
from repro.sim.simulator import Simulator
from repro.storage.catalog import Catalog
from repro.tpch.generator import generate
from repro.tpch.queries import TpchQuery, build

__all__ = [
    "DEFAULT_SCALE_FACTOR",
    "DEFAULT_SEED",
    "PAPER_PROCESSOR_COUNTS",
    "SpeedupSeries",
    "shared_catalog",
    "batch_makespan",
    "batch_speedup",
    "speedup_series",
]

# Raised 0.001 -> 0.005 with the columnar batch engine: the ~5-8x
# host-side speedup buys a 5x larger default database at the same
# figure-generation wall time.
DEFAULT_SCALE_FACTOR = 0.005
DEFAULT_SEED = 2007
PAPER_PROCESSOR_COUNTS = (1, 2, 8, 32)

_CATALOG_CACHE: dict[tuple[float, int], Catalog] = {}


def shared_catalog(
    scale_factor: float = DEFAULT_SCALE_FACTOR, seed: int = DEFAULT_SEED
) -> Catalog:
    """Memoized TPC-H database for the experiment suite."""
    key = (scale_factor, seed)
    if key not in _CATALOG_CACHE:
        _CATALOG_CACHE[key] = generate(scale_factor=scale_factor, seed=seed)
    return _CATALOG_CACHE[key]


@dataclass(frozen=True)
class SpeedupSeries:
    """One line of a speedup figure: Z over client counts."""

    query: str
    processors: int
    clients: tuple[int, ...]
    speedups: tuple[float, ...]

    def as_mapping(self) -> Mapping[int, float]:
        return dict(zip(self.clients, self.speedups))

    def max_speedup(self) -> float:
        return max(self.speedups)

    def min_speedup(self) -> float:
        return min(self.speedups)


def batch_makespan(
    catalog: Catalog,
    query: TpchQuery,
    m: int,
    processors: int,
    shared: bool,
    costs: CostModel = DEFAULT_COST_MODEL,
    buffer_pool=None,
    memory=None,
) -> float:
    """Simulated time for ``m`` copies of ``query`` to complete.

    ``buffer_pool`` / ``memory`` attach the optional resource layer
    (see :class:`~repro.engine.engine.Engine`); the default is the
    seed's ungoverned configuration.
    """
    sim = Simulator(processors=processors)
    engine = Engine(catalog, sim, costs=costs, buffer_pool=buffer_pool,
                    memory=memory)
    labels = [f"{query.name}#{i}" for i in range(m)]
    if shared and m > 1:
        engine.execute_group([query.plan] * m, pivot_op_id=query.pivot,
                             labels=labels)
    else:
        for label in labels:
            engine.execute(query.plan, label)
    sim.run()
    return sim.now


def batch_speedup(
    catalog: Catalog,
    query: TpchQuery,
    m: int,
    processors: int,
    costs: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Measured Z(m, n): unshared makespan over shared makespan."""
    unshared = batch_makespan(catalog, query, m, processors, shared=False,
                              costs=costs)
    shared = batch_makespan(catalog, query, m, processors, shared=True,
                            costs=costs)
    return unshared / shared


def speedup_series(
    catalog: Catalog,
    query_name: str,
    processors: int,
    clients: Sequence[int],
    costs: CostModel = DEFAULT_COST_MODEL,
) -> SpeedupSeries:
    """Measure one figure line through the staged engine."""
    query = build(query_name, catalog)
    speedups = tuple(
        batch_speedup(catalog, query, m, processors, costs=costs)
        for m in clients
    )
    return SpeedupSeries(
        query=query_name,
        processors=processors,
        clients=tuple(clients),
        speedups=speedups,
    )
