"""Section 4.4's worked example, regenerated from the library.

The paper plugs TPC-H Q6's profiled parameters (w = 9.66, s = 10.34
for the scan; p = 0.97 for the aggregate; k = 1) into the model and
derives closed forms. This driver evaluates the same quantities
through :mod:`repro.core` and prints them next to the paper's numbers
— a golden end-to-end check of the model implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import metrics
from repro.core.model import shared_metrics, shared_rate, unshared_rate
from repro.core.spec import QuerySpec, chain, op
from repro.experiments.report import format_table

__all__ = ["Section4Example", "run"]

SCAN_W = 9.66
SCAN_S = 10.34
AGG_P = 0.97


@dataclass(frozen=True)
class Section4Example:
    p_max: float
    total_work_per_query: float
    rows: tuple

    def render(self) -> str:
        header = (
            "Section 4.4 worked example — TPC-H Q6 "
            f"(w={SCAN_W}, s={SCAN_S}, agg p={AGG_P})\n"
            f"p_max = {self.p_max:g} (paper: 20)\n"
            f"u' per query = {self.total_work_per_query:g} (paper: ~21)\n"
        )
        return header + format_table(
            ["m", "n", "x_unshared", "paper form", "x_shared", "paper form"],
            self.rows,
        )


def paper_unshared(m: int, n: int) -> float:
    """min(M/20, n/21) — the paper's (rounded) closed form."""
    return min(m / 20.0, n / 21.0)


def paper_shared(m: int, n: int) -> float:
    """min(1/(9.66/M + 10.34), n/(9.66/M + 11.31))."""
    return min(1.0 / (9.66 / m + 10.34), n / (9.66 / m + 11.31))


def q6_spec() -> QuerySpec:
    return QuerySpec(chain(op("scan", SCAN_W, SCAN_S), op("agg", AGG_P)),
                     label="q6")


def run(
    client_counts=(1, 4, 16, 48),
    processor_counts=(1, 2, 8, 32),
) -> Section4Example:
    spec = q6_spec()
    rows = []
    for m in client_counts:
        group = [spec.relabeled(f"q6#{i}") for i in range(m)]
        for n in processor_counts:
            rows.append((
                m,
                n,
                unshared_rate(group, n),
                paper_unshared(m, n),
                shared_rate(group, "scan", n),
                paper_shared(m, n),
            ))
    shared = shared_metrics(
        [spec.relabeled(f"q6#{i}") for i in range(4)], "scan"
    )
    assert shared.p_max == SCAN_W + 4 * SCAN_S
    return Section4Example(
        p_max=metrics.p_max(spec),
        total_work_per_query=metrics.total_work(spec),
        rows=tuple(rows),
    )


if __name__ == "__main__":
    print(run().render())
