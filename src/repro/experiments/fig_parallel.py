"""Share or parallelize? The crossover the four-way policy must find.

The paper's question is whether *m* identical arrivals should share
one pivot; PR 9 adds the other axis — splitting each query into
``dop`` exchange-connected fragments — and this experiment measures
where each answer wins, then checks the policy finds the same line.

**Part A — the crossover sweep.** One scan-heavy aggregation runs in
two arms per cell: *share* (all m arrivals merged into one pivot-
shared group) and *parallel* (m solo queries, each fragmented
``dop``-way). Cells sweep the three axes the projection prices:

* **hardware contexts** — plentiful (32), scarce (8), and scarce
  *and contended* (4 contexts under a power-law ``kappa``);
* **consumers m** — 2 (parallelism has room) up to 12 (the pivot's
  once-vs-m-times advantage compounds while m·dop fragments fight
  over the same contexts);
* **data skew** — a uniform group column versus one where 85% of
  rows share one group (the largest hash partition bounds fragment
  speedup).

The expected picture, and what the assertions pin: with many contexts,
few consumers and even partitions, *parallelize* wins; as consumers
pile up or contexts become scarce/contended, *share* wins. The policy
(:meth:`~repro.policies.model_guided.ModelGuidedPolicy.choose_mode`)
is consulted per cell with the profiled spec and the *measured*
partition skew, and must pick the measured winner in ≥ 90% of cells.

**Part B — parity.** Parallelism must never change an answer: the
aggregation plan's row stream is bit-identical to serial at every
``dop`` on every preset (ordered merge), and the partition-wise hash
join reproduces the serial row *set* (gather order differs by
design).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.db import Database, Query, QueryBuilder, RuntimeConfig
from repro.engine import AggSpec
from repro.engine.expressions import col, ge, lit
from repro.engine.operators.hash_join import _partition_of
from repro.engine.parallel import EXCHANGE_SALT
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.report import format_table
from repro.policies import ModelGuidedPolicy
from repro.profiling import QueryProfiler
from repro.storage import Catalog, DataType, Schema

__all__ = [
    "ParallelCell",
    "ParityPoint",
    "FigParallelResult",
    "run",
    "DEFAULT_CONTEXTS",
    "DEFAULT_CONSUMERS",
    "DEFAULT_PARITY_DOPS",
    "DEFAULT_PARITY_PRESETS",
]

FACT_TABLE = "events"
DIM_TABLE = "dims"
FACT_ROWS = 2048
GROUPS = 64
# Per-tuple pivot work: the fused predicate costs
# ``filter_tuple * COST_FACTOR`` per row, making the scan expensive
# enough that one shared pass is worth fighting for (share wins when
# w/s clears m(c-1)/(m-c)).
COST_FACTOR = 128.0
DOP = 4
# Measured makespans within 5% are a wash: either verdict counts.
TIE_TOLERANCE = 0.05

# (label, hardware contexts, power-law contention kappa or None).
DEFAULT_CONTEXTS = (
    ("32 ctx", 32, None),
    ("8 ctx", 8, None),
    ("4 ctx k=.8", 4, 0.8),
)
DEFAULT_CONSUMERS = (2, 4, 12)
DEFAULT_SKEWS = ("uniform", "skewed")
DEFAULT_PARITY_DOPS = (1, 2, 4, 8)
DEFAULT_PARITY_PRESETS = ("laptop", "cmp32", "unbounded")


def _parallel_catalog(
    base_rows: int, skew: str, seed: int
) -> tuple[Catalog, dict[int, int]]:
    """A fact table plus a tiny dimension keyed by the group column.

    ``skew="uniform"`` spreads ``g`` over :data:`GROUPS` groups;
    ``skew="skewed"`` lands 85% of rows in group 0, so one hash
    partition holds most of the exchange traffic. Returns the catalog
    and the group histogram (the partition-skew measurement input).
    """
    catalog = Catalog()
    schema = Schema([("g", DataType.INT), ("v", DataType.FLOAT)])
    rows = []
    counts: dict[int, int] = {}
    state = seed & 0x7FFFFFFF or 1
    for _ in range(base_rows):
        # Park-Miller LCG: deterministic, independent of PYTHONHASHSEED.
        state = (state * 48271) % 2147483647
        if skew == "skewed" and state % 100 < 85:
            g = 0
        else:
            g = state % GROUPS
        counts[g] = counts.get(g, 0) + 1
        rows.append((g, state / 2147483647.0))
    catalog.create(FACT_TABLE, schema).insert_many(rows)
    dim_schema = Schema([("dg", DataType.INT), ("w", DataType.FLOAT)])
    dims = [(g, (g * 7 % 13) / 13.0) for g in range(GROUPS)]
    catalog.create(DIM_TABLE, dim_schema).insert_many(dims)
    return catalog, counts


def _agg_query(catalog: Catalog) -> Query:
    """The sweep query: one expensive fused scan under a grouped
    aggregate — scan-heavy (the sharing pivot), yet with a partition-
    wise parallel region (aggregate over a scan chain)."""
    return (
        QueryBuilder(catalog, FACT_TABLE)
        .where(ge(col("v"), lit(0.0)))  # keeps every row; carries the cost
        .with_cost_factor(COST_FACTOR)
        .agg(
            AggSpec("sum", "total", col("v")),
            AggSpec("count", "rows", None),
            by=("g",),
        )
        .named("par_agg")
        .build()
    )


def _join_query(catalog: Catalog) -> Query:
    """The parity join: partition-wise hash join of fact against dim."""
    return (
        QueryBuilder(catalog, FACT_TABLE)
        .hash_join(QueryBuilder(catalog, DIM_TABLE), build_key="dg", probe_key="g")
        .named("par_join")
        .build()
    )


def _with_dop(query: Query, dop: int) -> Query:
    from dataclasses import replace

    return replace(query, dop=dop)


def _measure_arm(
    catalog: Catalog,
    config: RuntimeConfig,
    query: Query,
    m: int,
    share: bool,
) -> tuple[float, list]:
    """Run m copies in one fresh session; returns (makespan, rows)."""
    session = Database.open(catalog, config)
    for i in range(m):
        session.submit(query, label=f"{query.name}#{i}", share=share)
    results = session.run_all()
    return session.now, results[0].rows


def _partition_loads(counts: dict[int, int], dop: int) -> list[int]:
    loads = [0] * dop
    for g, count in counts.items():
        loads[_partition_of(g, EXCHANGE_SALT, dop)] += count
    return loads


def _measured_skew(counts: dict[int, int], dop: int, costs) -> tuple[float, float]:
    """(raw partition skew, work-weighted effective skew).

    Raw skew is the largest hash partition over the mean — what the
    data alone says. The *effective* skew weighs it by how much of a
    fragment's work the skewed (post-exchange) stage actually is: the
    range-partitioned scan below the exchange is balanced regardless
    of data skew, so a scan-dominated fragment barely feels the
    partition imbalance. The policy is fed the effective number — the
    honest model input for this plan shape.
    """
    dop = max(1, dop)
    loads = _partition_loads(counts, dop)
    total = float(sum(loads)) or 1.0
    raw = max(loads) / (total / dop)
    scan_row = (
        costs.scan_tuple
        + costs.filter_tuple * COST_FACTOR
        + costs.exchange_tuple
    )
    agg_row = costs.agg_update
    per_fragment = [total / dop * scan_row + load * agg_row for load in loads]
    effective = max(per_fragment) / (sum(per_fragment) / dop)
    return raw, max(1.0, effective)


@dataclass(frozen=True)
class ParallelCell:
    """One (contexts, skew, consumers) cell of the crossover sweep."""

    contexts_label: str
    processors: int
    contention: Optional[float]
    skew: str
    consumers: int
    share_makespan: float
    parallel_makespan: float
    raw_partition_skew: float
    effective_skew: float
    policy_mode: str
    identical: bool

    @property
    def measured_winner(self) -> str:
        return "share" if self.share_makespan <= self.parallel_makespan else "parallel"

    @property
    def margin(self) -> float:
        """Relative gap between the arms (0 = dead heat)."""
        lo = min(self.share_makespan, self.parallel_makespan)
        hi = max(self.share_makespan, self.parallel_makespan)
        return (hi - lo) / lo if lo > 0 else 0.0

    @property
    def policy_family(self) -> str:
        return "share" if self.policy_mode in ("share", "both") else "parallel"

    @property
    def policy_matches(self) -> bool:
        """The verdict agrees with the measurement (ties are a wash)."""
        return self.policy_family == self.measured_winner or self.margin < TIE_TOLERANCE


@dataclass(frozen=True)
class ParityPoint:
    """One (preset, plan, dop) point of the answer-parity matrix."""

    preset: str
    plan: str
    dop: int
    makespan: float
    identical: bool


@dataclass(frozen=True)
class FigParallelResult:
    cells: tuple[ParallelCell, ...]
    parity: tuple[ParityPoint, ...]
    dop: int

    def policy_accuracy(self) -> float:
        """Fraction of cells where the policy picked the measured
        winner (or the arms tied within tolerance)."""
        if not self.cells:
            return 0.0
        return sum(c.policy_matches for c in self.cells) / len(self.cells)

    def answers_identical(self) -> bool:
        """Every arm and every parity point reproduced the serial
        answer — parallelism never changed a row."""
        return all(c.identical for c in self.cells) and all(
            p.identical for p in self.parity
        )

    def parallel_wins_uncontended(self) -> bool:
        """Low skew + plentiful contexts + few consumers: the
        fragmented arm beats the shared group."""
        best = self._cell(max(c.processors for c in self.cells), "uniform", min(c.consumers for c in self.cells))
        return best is not None and best.parallel_makespan < best.share_makespan

    def share_wins_contended(self) -> bool:
        """Scarce, contended contexts + many consumers: the shared
        pivot beats m·dop fragments fighting for the hardware."""
        worst = self._cell(min(c.processors for c in self.cells), None, max(c.consumers for c in self.cells))
        return worst is not None and worst.share_makespan < worst.parallel_makespan

    def crossover_observed(self) -> bool:
        return self.parallel_wins_uncontended() and self.share_wins_contended()

    def _cell(self, processors: int, skew: Optional[str], consumers: int):
        for cell in self.cells:
            if (
                cell.processors == processors
                and cell.consumers == consumers
                and (skew is None or cell.skew == skew)
            ):
                return cell
        return None

    def render(self) -> str:
        headers = [
            "contexts",
            "skew",
            "m",
            "share span",
            "parallel span",
            "winner",
            "part skew",
            "eff skew",
            "policy",
            "match",
        ]
        rows = [
            [
                c.contexts_label,
                c.skew,
                c.consumers,
                f"{c.share_makespan:.0f}",
                f"{c.parallel_makespan:.0f}",
                c.measured_winner,
                f"{c.raw_partition_skew:.2f}",
                f"{c.effective_skew:.2f}",
                c.policy_mode,
                "yes" if c.policy_matches else "NO",
            ]
            for c in self.cells
        ]
        title = f"Share vs parallelize — crossover sweep (dop={self.dop})"
        summary = (
            f"  policy accuracy: {self.policy_accuracy():.0%};"
            f"  parallel wins uncontended: {self.parallel_wins_uncontended()};"
            f"  share wins contended: {self.share_wins_contended()};"
            f"  answers identical: {self.answers_identical()}"
        )
        blocks = [f"{title}\n{format_table(headers, rows)}\n{summary}"]

        headers = ["preset", "plan", "dop", "makespan", "identical"]
        rows = [
            [p.preset, p.plan, p.dop, f"{p.makespan:.0f}", "yes" if p.identical else "NO"]
            for p in self.parity
        ]
        blocks.append(
            "Answer parity — every preset, every dop\n"
            + format_table(headers, rows)
        )
        return "\n\n".join(blocks)


def _policy_mode(
    catalog: Catalog,
    query: Query,
    config: RuntimeConfig,
    m: int,
    dop: int,
    effective_skew: float,
) -> str:
    """The four-way verdict for one cell, from a profiled spec."""
    profiler = QueryProfiler(
        catalog,
        costs=config.cost_model,
        page_rows=config.page_rows,
        queue_capacity=config.queue_capacity,
    )
    profile = profiler.profile(query.plan, query.pivot_op_id, label=query.name)
    policy = ModelGuidedPolicy(
        {query.name: (profile.to_query_spec(), query.pivot_op_id)},
        contention=config.contention,
    )
    projection = policy.choose_mode(
        query.name,
        m,
        config.processors,
        dop,
        partition_skew=effective_skew,
    )
    return projection.mode


def run(
    contexts: Sequence[tuple] = DEFAULT_CONTEXTS,
    consumers: Sequence[int] = DEFAULT_CONSUMERS,
    skews: Sequence[str] = DEFAULT_SKEWS,
    dop: int = DOP,
    parity_dops: Sequence[int] = DEFAULT_PARITY_DOPS,
    parity_presets: Sequence[str] = DEFAULT_PARITY_PRESETS,
    base_rows: int = FACT_ROWS,
    seed: int = DEFAULT_SEED,
) -> FigParallelResult:
    catalogs = {s: _parallel_catalog(base_rows, s, seed) for s in skews}

    cells = []
    for skew in skews:
        catalog, counts = catalogs[skew]
        query = _agg_query(catalog)
        parallel_query = _with_dop(query, dop)
        base_config = RuntimeConfig.preset("cmp32")
        reference_rows = Database.open(catalog, base_config).run(
            query, label="reference"
        ).rows
        raw_skew, eff_skew = _measured_skew(counts, dop, base_config.cost_model)
        for label, c, kappa in contexts:
            config = base_config.with_(processors=c, contention=kappa)
            for m in consumers:
                share_span, share_rows = _measure_arm(
                    catalog, config, query, m, share=True
                )
                par_span, par_rows = _measure_arm(
                    catalog, config, parallel_query, m, share=False
                )
                mode = _policy_mode(catalog, query, config, m, dop, eff_skew)
                cells.append(
                    ParallelCell(
                        contexts_label=label,
                        processors=c,
                        contention=kappa,
                        skew=skew,
                        consumers=m,
                        share_makespan=share_span,
                        parallel_makespan=par_span,
                        raw_partition_skew=raw_skew,
                        effective_skew=eff_skew,
                        policy_mode=mode,
                        identical=(
                            share_rows == reference_rows
                            and par_rows == reference_rows
                        ),
                    )
                )

    parity = []
    parity_catalog, _ = catalogs[skews[0]]
    for preset in parity_presets:
        config = RuntimeConfig.preset(preset)
        for plan_name, builder, ordered in (
            ("agg", _agg_query, True),
            ("join", _join_query, False),
        ):
            query = builder(parity_catalog)
            reference = Database.open(parity_catalog, config).run(
                query, label=f"{plan_name}-serial", share=False
            ).rows
            for d in parity_dops:
                session = Database.open(parity_catalog, config)
                result = session.run(
                    _with_dop(query, d), label=f"{plan_name}@dop{d}", share=False
                )
                rows = result.rows
                identical = (
                    rows == reference if ordered else sorted(rows) == sorted(reference)
                )
                parity.append(
                    ParityPoint(
                        preset=preset,
                        plan=plan_name,
                        dop=d,
                        makespan=session.now,
                        identical=identical,
                    )
                )

    return FigParallelResult(cells=tuple(cells), parity=tuple(parity), dop=dop)


if __name__ == "__main__":
    print(run().render())
