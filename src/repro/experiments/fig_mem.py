"""Memory-governance experiments: spilling joins and I/O-aware sharing.

The paper's sharing model is CPU-only; this experiment exercises the
storage layer that PR adds (buffer pool + memory broker + spilling
hybrid hash join) along two axes the CPU model cannot see:

**Part A — graceful degradation under memory pressure.** One
build/probe hash join (orders ⋈ lineitem) runs under a sweep of
``work_mem`` budgets. As the budget shrinks the join spills more
partition pages (monotonically), pays ``spill_page``/``io_page`` for
the extra traffic, and *always* completes with the same answer — the
degradation is a slope, not a cliff.

**Part B — the sharing decision flips with cache temperature.** A
consolidation workload: ``m`` tenants run an identical scan+aggregate
query. Unshared, each tenant scans its *private* replica of the data
(private caches: no cross-tenant reuse — the model's unshared
baseline); shared, one scan of the common table feeds all tenants.
With a **warm** cache the scan is CPU-only and the pivot's per-consumer
output cost dominates — the model says *don't share* (the paper's
scan-serialization result). With a **cold** cache every unshared tenant
pays the full ``io_page`` bill, the shared pivot pays it once, and the
same model — its CPU profile adjusted by the session's live resource
outlook — says *share*. The decision flips on cache temperature alone;
measured makespans and buffer counters validate both verdicts. Since
the facade PR the whole experiment runs through ``repro.db``: the
query is fluent-built, the decision comes from ``Session.advise`` (no
hand-rolled profiling pass), and the measurement arms force their
routing with ``submit(share=...)``.

(When the unshared tenants instead scan the *same* table through one
shared buffer pool, their page-synchronized scans convoy: the first
toucher misses, the rest hit, and cold unshared execution costs about
the same as warm — implicit cooperative scanning. The experiment
reports this configuration too; explicit cooperative scans are a
ROADMAP follow-up.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.decision import ShareDecision
from repro.db import Database, RuntimeConfig
from repro.engine import (
    AggSpec,
    CostModel,
    IO_AWARE_COST_MODEL,
    hash_join,
    scan,
)
from repro.engine.expressions import col, lt, mul
from repro.engine.stats import ResourceReport
from repro.experiments.common import (
    DEFAULT_SCALE_FACTOR,
    DEFAULT_SEED,
    shared_catalog,
)
from repro.experiments.report import format_table
from repro.storage import Catalog, DataType, Schema
from repro.storage.page import DEFAULT_PAGE_ROWS

__all__ = [
    "MemSweepPoint",
    "FlipConfig",
    "FigMemResult",
    "run",
    "DEFAULT_WORK_MEMS",
]

DEFAULT_WORK_MEMS = (64, 32, 16, 8, 4, 2)
# Large enough for every tenant replica to stay resident when warm
# (16 tenants x ~94 pages); cold runs start empty either way.
DEFAULT_POOL_PAGES = 2048
# Cold-storage calibration for this experiment: fetching one page
# costs a few times the CPU work of scanning it — enough that a cold
# scan is I/O-bound, as on a disk-resident warehouse.
FLIP_COSTS = CostModel(io_page=400.0, spill_page=500.0)
SWEEP_COSTS = IO_AWARE_COST_MODEL


# ----------------------------------------------------------------------
# Part A: work_mem sweep over the spilling hybrid hash join
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MemSweepPoint:
    """One ``work_mem`` setting of the join sweep."""

    work_mem: int
    makespan: float
    spill_pages_written: int
    spill_pages_read: int
    buffer_hit_rate: float
    mem_high_water: int
    overcommits: int
    rows_out: int


def _sweep_join_plan(catalog: Catalog):
    build = scan(catalog, "orders", columns=["o_orderkey"], op_id="sweep_build")
    probe = scan(
        catalog, "lineitem", columns=["l_orderkey", "l_extendedprice"],
        op_id="sweep_probe",
    )
    return hash_join(build, probe, build_key="o_orderkey",
                     probe_key="l_orderkey", join_type="inner",
                     op_id="sweep_join")


def sweep_work_mem(
    catalog: Catalog,
    work_mems: Sequence[int] = DEFAULT_WORK_MEMS,
    processors: int = 8,
    pool_pages: int = 128,
    policy: str = "lru",
    costs: CostModel = SWEEP_COSTS,
) -> tuple[MemSweepPoint, ...]:
    """Run the join once per budget; every run must agree on rows."""
    plan = _sweep_join_plan(catalog)
    points = []
    for work_mem in work_mems:
        session = Database.open(catalog, RuntimeConfig(
            work_mem=work_mem, pool_pages=pool_pages, pool_policy=policy,
            processors=processors, cost_model=costs,
        ))
        result = session.run(plan, label=f"sweep@{work_mem}")
        report = result.resources
        points.append(MemSweepPoint(
            work_mem=work_mem,
            makespan=result.makespan,
            spill_pages_written=report.spill_pages_written,
            spill_pages_read=report.spill_pages_read,
            buffer_hit_rate=report.hit_rate,
            mem_high_water=report.memory.high_water,
            overcommits=report.memory.overcommits,
            rows_out=len(result.rows),
        ))
    return tuple(points)


# ----------------------------------------------------------------------
# Part B: cold/warm sharing-decision flip
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FlipConfig:
    """One cache-temperature configuration of the flip experiment."""

    name: str
    decision: ShareDecision
    makespan_unshared: float
    makespan_shared: float
    unshared_resources: ResourceReport
    shared_resources: ResourceReport

    @property
    def measured_benefit(self) -> float:
        return self.makespan_unshared / self.makespan_shared


FLIP_TABLE = "tenantdata"
FLIP_ROWS = 6000
FLIP_SELECTIVITY = 0.25


def _flip_catalog(base_rows: int, tenants: int, seed: int) -> Catalog:
    """A catalog with one common table plus per-tenant replicas.

    Row ``i`` carries ``(k=i, v=deterministic pseudo-uniform [0,1))``;
    replicas are byte-identical to the common table, so a query is the
    same work no matter which copy it scans — only cache behavior
    differs.
    """
    catalog = Catalog()
    schema = Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
    rows = []
    state = seed & 0x7FFFFFFF or 1
    for i in range(base_rows):
        # Park-Miller LCG: deterministic, independent of PYTHONHASHSEED.
        state = (state * 48271) % 2147483647
        rows.append((i, state / 2147483647.0))
    for name in [FLIP_TABLE] + [f"{FLIP_TABLE}__{t}" for t in range(tenants)]:
        table = catalog.create(name, schema)
        table.insert_many(rows)
    return catalog


def _flip_query(session, table_name: str):
    """Fused scan (moderate selectivity, two outputs) + tiny aggregate.

    Built through the session's fluent builder; the fused scan is the
    default sharing pivot, exactly as the hand-built plan designated.
    """
    return (
        session.table(table_name, columns=["k", "v"])
        .where(lt(col("v"), FLIP_SELECTIVITY))
        .select(("k", col("k"), DataType.INT),
                ("vv", mul(col("v"), col("v")), DataType.FLOAT))
        .agg(AggSpec("sum", "total", col("vv")), AggSpec("count", "n"))
        .named(f"flip:{table_name}")
        .build()
    )


def _flip_config(
    processors: int, pool_pages: int, page_rows: int, costs: CostModel
) -> RuntimeConfig:
    return RuntimeConfig(pool_pages=pool_pages, page_rows=page_rows,
                         processors=processors, cost_model=costs)


def _measure_flip(
    catalog: Catalog,
    tenants: int,
    processors: int,
    pool_pages: int,
    page_rows: int,
    warm: bool,
    costs: CostModel,
) -> tuple[float, float, ResourceReport, ResourceReport]:
    """Measured makespans (unshared-private-replicas, shared-common)."""
    config = _flip_config(processors, pool_pages, page_rows, costs)

    def open_session(warm_tables):
        session = Database.open(catalog, config)
        if warm:
            session.prewarm(*warm_tables)
        return session

    # Unshared: tenant t scans its private replica — a private cache,
    # exactly the no-cross-query-reuse baseline the model assumes.
    replica_names = [f"{FLIP_TABLE}__{t}" for t in range(tenants)]
    session = open_session(replica_names)
    for t, name in enumerate(replica_names):
        session.submit(_flip_query(session, name), label=f"tenant{t}",
                       share=False)
    session.run_all()
    unshared_makespan = session.now
    unshared_resources = session.resources()

    # Shared: one scan of the common table feeds every tenant.
    session = open_session([FLIP_TABLE])
    query = _flip_query(session, FLIP_TABLE)
    for t in range(tenants):
        session.submit(query, label=f"tenant{t}", share=True)
    session.run_all()
    return (unshared_makespan, session.now, unshared_resources,
            session.resources())


def run_flip(
    tenants: int = 16,
    processors: int = 8,
    pool_pages: int = DEFAULT_POOL_PAGES,
    page_rows: int = DEFAULT_PAGE_ROWS,
    base_rows: int = FLIP_ROWS,
    seed: int = DEFAULT_SEED,
    costs: CostModel = FLIP_COSTS,
) -> tuple[FlipConfig, ...]:
    """Decide (via the session's live advisor) and measure, cold and
    warm: the facade's automatic decision replaces the hand-rolled
    profile-then-advise pass the pre-facade driver carried."""
    catalog = _flip_catalog(base_rows, tenants, seed)
    config = _flip_config(processors, pool_pages, page_rows, costs)

    configs = []
    for name in ("cold", "warm"):
        warm = name == "warm"
        session = Database.open(catalog, config)
        if warm:
            session.prewarm(FLIP_TABLE)
        decision = session.advise(_flip_query(session, FLIP_TABLE), tenants)
        (mk_unshared, mk_shared, res_unshared, res_shared) = _measure_flip(
            catalog, tenants, processors, pool_pages, page_rows, warm, costs,
        )
        configs.append(FlipConfig(
            name=name,
            decision=decision,
            makespan_unshared=mk_unshared,
            makespan_shared=mk_shared,
            unshared_resources=res_unshared,
            shared_resources=res_shared,
        ))
    return tuple(configs)


# ----------------------------------------------------------------------
# The figure
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FigMemResult:
    sweep: tuple[MemSweepPoint, ...]
    flips: tuple[FlipConfig, ...]
    tenants: int
    processors: int

    def flip(self, name: str) -> FlipConfig:
        for config in self.flips:
            if config.name == name:
                return config
        raise KeyError(name)

    def spill_is_monotone(self) -> bool:
        """Spilled pages never decrease as ``work_mem`` shrinks."""
        ordered = sorted(self.sweep, key=lambda p: p.work_mem, reverse=True)
        written = [p.spill_pages_written for p in ordered]
        return all(a <= b for a, b in zip(written, written[1:]))

    def answers_agree(self) -> bool:
        return len({p.rows_out for p in self.sweep}) == 1

    def decision_flipped(self) -> bool:
        return (self.flip("cold").decision.share
                and not self.flip("warm").decision.share)

    def render(self) -> str:
        headers = ["work_mem", "makespan", "spill written", "spill read",
                   "hit rate", "mem high-water", "overcommits"]
        rows = [
            [p.work_mem, f"{p.makespan:.0f}", p.spill_pages_written,
             p.spill_pages_read, f"{p.buffer_hit_rate:.0%}",
             p.mem_high_water, p.overcommits]
            for p in self.sweep
        ]
        blocks = [
            "Memory governance — spilling hybrid hash join, work_mem sweep\n"
            + format_table(headers, rows)
            + f"\n  identical answers across budgets: {self.answers_agree()};"
            f"  spill growth monotone: {self.spill_is_monotone()}"
        ]

        lines = [
            f"Sharing decision vs cache temperature "
            f"({self.tenants} tenants on {self.processors} processors)"
        ]
        for config in self.flips:
            d = config.decision
            lines.append(
                f"  {config.name:>4}: model says "
                f"{'SHARE' if d.share else 'DO NOT SHARE'} "
                f"(predicted Z={d.benefit:.2f}); measured "
                f"unshared/shared = {config.measured_benefit:.2f} "
                f"(unshared {config.makespan_unshared:.0f}, "
                f"shared {config.makespan_shared:.0f})"
            )
            lines.append(
                "        unshared " + config.unshared_resources.render()
            )
            lines.append(
                "        shared   " + config.shared_resources.render()
            )
        lines.append(f"  decision flipped cold->warm: {self.decision_flipped()}")
        blocks.append("\n".join(lines))
        return "\n\n".join(blocks)


def run(
    work_mems: Sequence[int] = DEFAULT_WORK_MEMS,
    tenants: int = 16,
    processors: int = 8,
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    seed: int = DEFAULT_SEED,
) -> FigMemResult:
    catalog = shared_catalog(scale_factor, seed)
    sweep = sweep_work_mem(catalog, work_mems, processors=processors)
    flips = run_flip(tenants=tenants, processors=processors, seed=seed)
    return FigMemResult(sweep=sweep, flips=flips, tenants=tenants,
                        processors=processors)


if __name__ == "__main__":
    print(run().render())
