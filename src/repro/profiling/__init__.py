"""Parameter estimation against the staged engine (Section 3.1).

Profiles a few invocations with and without sharing and solves the
linear system separating each operator's ``w`` from its per-consumer
``s``; the result converts directly into the model's
:class:`~repro.core.spec.QuerySpec`.
"""

from repro.profiling.online import OnlineEstimator
from repro.profiling.profiler import (
    QueryProfile,
    QueryProfiler,
    ResourceFactory,
    observations_from_tasks,
)

__all__ = [
    "OnlineEstimator",
    "QueryProfile",
    "QueryProfiler",
    "ResourceFactory",
    "observations_from_tasks",
]
