"""Online model parameter estimation.

The paper estimates parameters offline but notes: "because parameter
estimation is straightforward we anticipate no significant barriers to
online estimation" (Section 3.1). This module removes the offline
step: an :class:`OnlineEstimator` ingests the stage busy times of
every completed group *during normal operation* and maintains a
rolling least-squares fit, so the sharing model adapts to the live
workload with no profiling pass.

Identification still requires the pivot to be observed at two or more
distinct consumer counts (otherwise ``w`` and ``s`` cannot be
separated); cold-started estimators therefore report ``ready() ==
False`` until at least one shared and one unshared execution have been
seen, and the policy layer funds a small *exploration budget* of
shared groups to gather that evidence — or a prior offline profile can
seed the estimator directly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.estimation import Observation, estimate_many
from repro.core.spec import OperatorSpec, QuerySpec
from repro.engine.plan import PlanNode
from repro.errors import EstimationError
from repro.profiling.profiler import QueryProfile, observations_from_tasks

__all__ = ["OnlineEstimator"]


class OnlineEstimator:
    """Rolling per-operator parameter estimates for one query type.

    Parameters
    ----------
    plan / pivot_op_id / label:
        The query type being modeled.
    window:
        Observations retained per operator (rolling window, so the
        estimates track workload drift).
    prior:
        Optional offline :class:`~repro.profiling.QueryProfile` whose
        estimates seed the window (reconstructed as synthetic
        observations at one and two consumers, which the least-squares
        fit inverts exactly).
    """

    def __init__(
        self,
        plan: PlanNode,
        pivot_op_id: str,
        label: str = "query",
        window: int = 32,
        prior: Optional[QueryProfile] = None,
    ) -> None:
        if window < 2:
            raise EstimationError(f"window must be >= 2, got {window}")
        plan.find(pivot_op_id)
        self.plan = plan
        self.pivot_op_id = pivot_op_id
        self.label = label
        self.window = window
        # One rolling window per (operator, consumer count): shared
        # executions are rare relative to solo ones in a live system,
        # and a single shared window would let the flood of
        # single-consumer observations evict the multi-consumer
        # evidence that identifies the pivot's s.
        self._samples: dict[tuple[str, int], Deque[Observation]] = {}
        self.groups_observed = 0
        self.shared_groups_observed = 0
        if prior is not None:
            self._seed_from(prior)

    # ------------------------------------------------------------------

    def _seed_from(self, prior: QueryProfile) -> None:
        for node in self.plan.walk():
            estimate = prior.estimates.get(node.op_id)
            if estimate is None:
                continue
            for consumers in (1, 2):
                self._bucket(node.op_id, consumers).append(
                    Observation(
                        busy_time=estimate.work
                        + estimate.output_cost * consumers,
                        units=1.0,
                        consumers=consumers,
                    )
                )
        self.shared_groups_observed += 1
        self.groups_observed += 2

    def _bucket(self, op_id: str, consumers: int) -> Deque[Observation]:
        key = (op_id, consumers)
        bucket = self._samples.get(key)
        if bucket is None:
            bucket = deque(maxlen=self.window)
            self._samples[key] = bucket
        return bucket

    def _observed_ops(self) -> set[str]:
        return {op_id for op_id, _ in self._samples}

    def _pivot_consumer_counts(self) -> set[int]:
        return {
            consumers
            for op_id, consumers in self._samples
            if op_id == self.pivot_op_id
        }

    # ------------------------------------------------------------------

    def observe_group(self, group_size: int, tasks) -> None:
        """Fold one completed group's stage tasks into the window."""
        if group_size < 1:
            raise EstimationError(f"group_size must be >= 1, got {group_size}")
        for op_id, obs in observations_from_tasks(
            self.plan, self.pivot_op_id, group_size, tasks
        ):
            self._bucket(op_id, obs.consumers).append(obs)
        self.groups_observed += 1
        if group_size > 1:
            self.shared_groups_observed += 1

    def ready(self) -> bool:
        """True once the pivot's ``w`` and ``s`` are identifiable:
        every operator observed, and the pivot at >= 2 distinct
        consumer counts."""
        plan_ops = {node.op_id for node in self.plan.walk()}
        if not plan_ops <= self._observed_ops():
            return False
        return len(self._pivot_consumer_counts()) >= 2

    def current_spec(self) -> QuerySpec:
        """The model-level plan with the current rolling estimates."""
        if not self.ready():
            raise EstimationError(
                f"online estimator for {self.label!r} is not ready; "
                f"observed {self.groups_observed} group(s), "
                f"{self.shared_groups_observed} shared"
            )
        estimates = estimate_many(
            (op_id, obs)
            for (op_id, _), bucket in self._samples.items()
            for obs in bucket
        )

        def convert(node: PlanNode) -> OperatorSpec:
            estimate = estimates[node.op_id]
            return OperatorSpec(
                name=node.op_id,
                work=estimate.work,
                output_cost=estimate.output_cost,
                children=tuple(convert(child) for child in node.children),
            )

        return QuerySpec(root=convert(self.plan), label=self.label)
