"""Model parameter extraction from engine runs (Section 3.1).

"We build a model for each query type by profiling the system during a
few test query invocations, both with and without work sharing. We
then solve a system of linear equations to divide up the active time
of each operator among the different nodes of the query plan."

:class:`QueryProfiler` does exactly that against the staged engine:

1. run the query once unshared and once per requested sharer count
   (shared at the query's pivot), on a dedicated simulator;
2. record each stage task's *busy time* per run. One run completes one
   unit of forward progress per member, so below-pivot stages (which
   execute once per group pass) yield per-query-normalized
   observations directly, while above-pivot stages (one instance per
   member) are averaged over members;
3. feed the observations to the least-squares solver of
   :mod:`repro.core.estimation`; varying the pivot's consumer count
   across runs separates its ``w`` from its ``s``;
4. assemble a model-level :class:`~repro.core.spec.QuerySpec` mirroring
   the plan tree, ready for :class:`~repro.core.decision.ShareAdvisor`.

Busy time in the simulator equals work charged (with ``kappa = 1``),
so profiles are independent of the processor count used for
profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Tuple

from repro.core.estimation import Observation, OperatorEstimate, estimate_many
from repro.core.spec import OperatorSpec, QuerySpec
from repro.engine.costs import DEFAULT_COST_MODEL, CostModel
from repro.engine.engine import Engine
from repro.engine.memory import MemoryBroker
from repro.engine.plan import PlanNode
from repro.engine.stats import ResourceReport, resource_report
from repro.errors import EstimationError
from repro.sim.simulator import Simulator
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.page import DEFAULT_PAGE_ROWS

# A per-run supplier of (buffer pool, memory broker) — called once per
# profiling invocation so every run starts from the same cache state
# (cold, or prewarmed by the factory).
ResourceFactory = Callable[
    [], Tuple[Optional[BufferPool], Optional[MemoryBroker]]
]

__all__ = [
    "QueryProfile",
    "QueryProfiler",
    "ResourceFactory",
    "observations_from_tasks",
]


def observations_from_tasks(
    plan: PlanNode,
    pivot_op_id: str,
    m: int,
    tasks,
) -> list[tuple[str, Observation]]:
    """Turn one group run's stage tasks into estimator observations.

    One run completes one unit of forward progress per member:
    stages at/below the pivot execute once per group pass (the pivot
    feeding ``m`` consumers), stages above it once per member. Task
    names are ``<prefix>/<op_id>`` — the prefix itself may contain
    slashes (client labels do), so the op_id is the last component.
    Sink tasks are skipped.
    """
    pivot = plan.find(pivot_op_id)
    shared_ids = {node.op_id for node in pivot.walk()}

    busy_by_op: dict[str, float] = {}
    instances: dict[str, int] = {}
    for task in tasks:
        if "/" not in task.name:
            continue
        op_id = task.name.rsplit("/", 1)[-1]
        if op_id == "sink":
            continue
        busy_by_op[op_id] = busy_by_op.get(op_id, 0.0) + task.busy_time
        instances[op_id] = instances.get(op_id, 0) + 1

    samples: list[tuple[str, Observation]] = []
    for op_id, busy in busy_by_op.items():
        if op_id in shared_ids:
            consumers = m if op_id == pivot_op_id else 1
            samples.append(
                (op_id, Observation(busy_time=busy, units=1.0,
                                    consumers=consumers))
            )
        else:
            count = instances[op_id]
            samples.append(
                (op_id, Observation(busy_time=busy / count, units=1.0,
                                    consumers=1))
            )
    return samples


@dataclass(frozen=True)
class QueryProfile:
    """Fitted per-operator parameters for one query type.

    ``resources`` carries one ``(sharers, ResourceReport)`` entry per
    profiling run when the profiler was given a resource factory —
    the buffer hit/miss and spill counters behind the fitted numbers.
    """

    label: str
    pivot_op_id: str
    estimates: Mapping[str, OperatorEstimate]
    plan: PlanNode
    resources: Tuple[Tuple[int, ResourceReport], ...] = field(default=())

    def operator(self, op_id: str) -> OperatorEstimate:
        try:
            return self.estimates[op_id]
        except KeyError:
            raise EstimationError(
                f"no profile for operator {op_id!r}; have {sorted(self.estimates)}"
            ) from None

    def to_query_spec(
        self,
        label: Optional[str] = None,
        mark_blocking: bool = False,
    ) -> QuerySpec:
        """Build the model-level plan with the fitted ``w``/``s``.

        Non-pivot operators fold their (constant, single-consumer)
        output cost into ``w``; the pivot keeps its fitted per-consumer
        ``s`` — exactly the information the sharing model needs.

        With ``mark_blocking=True`` the stop-&-go operators of the plan
        (aggregates and sorts) are flagged as blocking, so the spec can
        be wrapped in :class:`~repro.core.phases.PhasedQuery` for the
        Section 5.2 phase-aware predictions. Their measured busy time
        is attributed to the consume side (emit volumes are small for
        aggregation trees); the simple fully-pipelined form — the one
        the paper validates — remains the default.
        """

        def convert(node: PlanNode) -> OperatorSpec:
            estimate = self.operator(node.op_id)
            blocking = mark_blocking and node.kind in ("aggregate", "sort")
            return OperatorSpec(
                name=node.op_id,
                work=estimate.work,
                output_cost=estimate.output_cost,
                children=tuple(convert(child) for child in node.children),
                blocking=blocking,
            )

        return QuerySpec(root=convert(self.plan), label=label or self.label)


class QueryProfiler:
    """Profiles queries on dedicated simulator instances."""

    def __init__(
        self,
        catalog: Catalog,
        costs: CostModel = DEFAULT_COST_MODEL,
        page_rows: int = DEFAULT_PAGE_ROWS,
        queue_capacity: int = 4,
        processors: int = 8,
        resources: Optional[ResourceFactory] = None,
    ) -> None:
        self.catalog = catalog
        self.costs = costs
        self.page_rows = page_rows
        self.queue_capacity = queue_capacity
        self.processors = processors
        self.resources = resources

    def profile(
        self,
        plan: PlanNode,
        pivot_op_id: str,
        label: str = "query",
        sharer_counts: Sequence[int] = (1, 2, 4),
    ) -> QueryProfile:
        """Run the profiling invocations and fit all operators."""
        if not sharer_counts:
            raise EstimationError("need at least one sharer count")
        if min(sharer_counts) < 1:
            raise EstimationError(f"invalid sharer counts {sharer_counts!r}")
        plan.find(pivot_op_id)  # validate early

        samples: list[tuple[str, Observation]] = []
        run_resources: list[tuple[int, ResourceReport]] = []
        for m in sharer_counts:
            run_samples, report = self._run_once(plan, pivot_op_id, m)
            samples.extend(run_samples)
            if report is not None:
                run_resources.append((m, report))
        estimates = estimate_many(samples)
        return QueryProfile(
            label=label,
            pivot_op_id=pivot_op_id,
            estimates=estimates,
            plan=plan,
            resources=tuple(run_resources),
        )

    # ------------------------------------------------------------------

    def _run_once(
        self, plan: PlanNode, pivot_op_id: str, m: int
    ) -> tuple[list[tuple[str, Observation]], Optional[ResourceReport]]:
        pool, memory = self.resources() if self.resources is not None else (None, None)
        sim = Simulator(processors=self.processors)
        engine = Engine(
            self.catalog,
            sim,
            costs=self.costs,
            page_rows=self.page_rows,
            queue_capacity=self.queue_capacity,
            buffer_pool=pool,
            memory=memory,
        )
        if m == 1:
            engine.execute(plan, "prof#0")
        else:
            engine.execute_group(
                [plan] * m, pivot_op_id=pivot_op_id,
                labels=[f"prof#{i}" for i in range(m)],
            )
        sim.run()
        report = (
            resource_report(engine)
            if engine.pool is not None or engine.memory is not None
            else None
        )
        return observations_from_tasks(plan, pivot_op_id, m, sim.tasks), report
