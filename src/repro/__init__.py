"""repro — a reproduction of "To Share or Not To Share?" (VLDB 2007).

The package implements, from scratch:

* the paper's analytical model of the work-sharing/parallelism
  trade-off (:mod:`repro.core`),
* a discrete-event chip-multiprocessor simulator standing in for the
  UltraSparc T1 testbed (:mod:`repro.sim`),
* an in-memory columnar storage layer (:mod:`repro.storage`) and a
  deterministic TPC-H data generator plus the paper's query plans
  (:mod:`repro.tpch`),
* a Cordoba-style staged execution engine with packet merging and
  pivot multiplexing (:mod:`repro.engine`),
* model parameter estimation from engine profiles
  (:mod:`repro.profiling`),
* the always-share / never-share / model-guided sharing policies
  (:mod:`repro.policies`) and a closed-system client driver
  (:mod:`repro.workload`),
* one experiment driver per paper figure (:mod:`repro.experiments`).

Quickstart::

    from repro.core import QuerySpec, ShareAdvisor, chain, op

    q6 = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)),
                   label="q6")
    advisor = ShareAdvisor(processors=32)
    group = [q6.relabeled(f"q6#{i}") for i in range(10)]
    decision = advisor.evaluate(group, pivot_name="scan")
    print(decision.share, decision.benefit)
"""

from repro.core import (
    OperatorSpec,
    QuerySpec,
    ShareAdvisor,
    ShareDecision,
    chain,
    op,
    shared_rate,
    sharing_benefit,
    unshared_rate,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "OperatorSpec",
    "QuerySpec",
    "ShareAdvisor",
    "ShareDecision",
    "chain",
    "op",
    "shared_rate",
    "sharing_benefit",
    "unshared_rate",
    "ReproError",
    "__version__",
]
