"""repro — a reproduction of "To Share or Not To Share?" (VLDB 2007).

The package implements, from scratch:

* the paper's analytical model of the work-sharing/parallelism
  trade-off (:mod:`repro.core`),
* a discrete-event chip-multiprocessor simulator standing in for the
  UltraSparc T1 testbed (:mod:`repro.sim`),
* an in-memory columnar storage layer with memory governance — buffer
  pool, spill files, cooperative elevator scans (:mod:`repro.storage`)
  — and a deterministic TPC-H generator plus the paper's query plans
  (:mod:`repro.tpch`),
* a Cordoba-style staged execution engine with packet merging and
  pivot multiplexing (:mod:`repro.engine`),
* model parameter estimation from engine profiles
  (:mod:`repro.profiling`), sharing policies (:mod:`repro.policies`),
  and workload drivers (:mod:`repro.workload`),
* the :mod:`repro.db` facade — sessions, a fluent query builder, and
  policy-driven automatic sharing — which is the recommended entry
  point,
* one experiment driver per paper figure (:mod:`repro.experiments`).

Quickstart::

    from repro import Database, RuntimeConfig
    from repro.engine.expressions import col, lt
    from repro.tpch.generator import generate

    catalog = generate(scale_factor=0.001, seed=7)
    session = Database.open(catalog, RuntimeConfig.preset("cmp32"))
    query = (session.table("lineitem")
                    .where(lt(col("l_quantity"), 24.0))
                    .select("l_orderkey", "l_extendedprice"))

    for i in range(16):
        session.submit(query, label=f"client{i}")
    for result in session.run_all():   # the session decides sharing
        print(result.render())

The analytical model remains available standalone::

    from repro.core import QuerySpec, ShareAdvisor, chain, op

    q6 = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)),
                   label="q6")
    decision = ShareAdvisor(processors=32).evaluate(
        [q6.relabeled(f"q6#{i}") for i in range(10)], pivot_name="scan"
    )
    print(decision.share, decision.benefit)
"""

from repro.core import (
    OperatorSpec,
    QuerySpec,
    ShareAdvisor,
    ShareDecision,
    chain,
    op,
    shared_rate,
    sharing_benefit,
    unshared_rate,
)
from repro.db import Database, QueryResult, RuntimeConfig, Session
from repro.errors import ReproError
from repro.server import Server

__version__ = "1.2.0"

__all__ = [
    "Database",
    "Server",
    "Session",
    "RuntimeConfig",
    "QueryResult",
    "OperatorSpec",
    "QuerySpec",
    "ShareAdvisor",
    "ShareDecision",
    "chain",
    "op",
    "shared_rate",
    "sharing_benefit",
    "unshared_rate",
    "ReproError",
    "__version__",
]
