"""Workload harnesses: closed-system (Little's law) and open-system
(Poisson arrivals) drivers over the sharing coordinator."""

from repro.workload.driver import ClosedSystemResult, run_closed_system
from repro.workload.mixes import WorkloadMix
from repro.workload.open_driver import OpenSystemResult, run_open_system

__all__ = [
    "ClosedSystemResult",
    "run_closed_system",
    "OpenSystemResult",
    "run_open_system",
    "WorkloadMix",
]
