"""Closed-system workload driver (Sections 1.2 and 8.2).

"We assume a closed system where every query that completes is
replaced by a new one, as is typical for a system under heavy load."
The driver realizes that: ``n_clients`` clients each keep exactly one
query outstanding, drawing the next query type from a
:class:`~repro.workload.mixes.WorkloadMix` the moment the previous one
completes (zero think time). Queries route through a
:class:`~repro.policies.coordinator.SharingCoordinator` under the
chosen policy.

Throughput is measured with the standard warmup-then-window protocol;
per-query-type completion counts and client response times are
collected for the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.contention import ContentionLike
from repro.engine.costs import DEFAULT_COST_MODEL, CostModel
from repro.engine.engine import Engine
from repro.errors import WorkloadError
from repro.policies.base import SharingPolicy
from repro.policies.coordinator import SharingCoordinator
from repro.sim.simulator import Simulator
from repro.storage.catalog import Catalog
from repro.tpch.queries import TpchQuery, build
from repro.workload.mixes import WorkloadMix

__all__ = ["ClosedSystemResult", "run_closed_system"]


@dataclass(frozen=True)
class ClosedSystemResult:
    """Measurements from one closed-system run.

    ``throughput`` is completions per simulated time unit over the
    measurement window (multiply by any constant to taste — the
    figures report queries/min by scaling simulated time).
    """

    policy: str
    processors: int
    n_clients: int
    window: float
    completions: int
    throughput: float
    utilization: float
    completions_by_query: Mapping[str, int]
    mean_response_time: float
    shared_submissions: int
    solo_submissions: int


@dataclass
class _Client:
    """One closed-loop client: resubmits on every completion."""

    client_id: int
    coordinator: SharingCoordinator
    queries: Mapping[str, TpchQuery]
    stream: object
    stats: "_Stats"
    submissions: int = 0

    def start(self) -> None:
        self._submit_next()

    def _submit_next(self) -> None:
        name = next(self.stream)
        self.submissions += 1
        submitted_at = self.coordinator.engine.sim.now
        label = f"c{self.client_id}/{name}#{self.submissions}"

        def done(handle) -> None:
            now = self.coordinator.engine.sim.now
            self.stats.record(name, now - submitted_at)
            self._submit_next()

        self.coordinator.submit(self.queries[name], label, on_complete=done)


@dataclass
class _Stats:
    completions: int = 0
    by_query: dict = field(default_factory=dict)
    total_response: float = 0.0

    def record(self, name: str, response_time: float) -> None:
        self.completions += 1
        self.by_query[name] = self.by_query.get(name, 0) + 1
        self.total_response += response_time

    def snapshot(self) -> tuple[int, dict, float]:
        return self.completions, dict(self.by_query), self.total_response


def run_closed_system(
    catalog: Catalog,
    policy: SharingPolicy,
    mix: WorkloadMix,
    n_clients: int,
    processors: int,
    warmup: float,
    window: float,
    costs: CostModel = DEFAULT_COST_MODEL,
    contention: ContentionLike = None,
    queue_capacity: int = 4,
    page_rows: Optional[int] = None,
    max_group_size: Optional[int] = None,
) -> ClosedSystemResult:
    """Run one closed-system experiment cell and measure throughput."""
    if n_clients < 1:
        raise WorkloadError(f"n_clients must be >= 1, got {n_clients}")
    if warmup < 0 or window <= 0:
        raise WorkloadError(
            f"invalid warmup/window: {warmup!r}/{window!r}"
        )

    sim = Simulator(processors=processors, contention=contention)
    engine_kwargs = dict(costs=costs, queue_capacity=queue_capacity)
    if page_rows is not None:
        engine_kwargs["page_rows"] = page_rows
    engine = Engine(catalog, sim, **engine_kwargs)
    coordinator = SharingCoordinator(engine, policy,
                                     max_group_size=max_group_size)

    queries = {name: build(name, catalog) for name in mix.weights}
    stats = _Stats()
    for client_id in range(n_clients):
        client = _Client(
            client_id=client_id,
            coordinator=coordinator,
            queries=queries,
            stream=mix.stream(client_id),
            stats=stats,
        )
        client.start()

    sim.run(until=warmup)
    count0, by_query0, response0 = stats.snapshot()
    busy0 = sim.total_busy_time
    start = sim.now

    sim.run(until=start + window)
    count1, by_query1, response1 = stats.snapshot()
    elapsed = sim.now - start
    completions = count1 - count0
    by_query = {
        name: by_query1.get(name, 0) - by_query0.get(name, 0)
        for name in mix.weights
    }
    mean_response = (
        (response1 - response0) / completions if completions else float("inf")
    )
    return ClosedSystemResult(
        policy=policy.name,
        processors=processors,
        n_clients=n_clients,
        window=elapsed,
        completions=completions,
        throughput=completions / elapsed,
        utilization=(sim.total_busy_time - busy0) / (processors * elapsed),
        completions_by_query=by_query,
        mean_response_time=mean_response,
        shared_submissions=coordinator.shared_submissions,
        solo_submissions=coordinator.solo_submissions,
    )
