"""Open-system workload driver (Section 5.1).

In an open system "arrivals are independent of each other; as long as
the system can process queries faster than they arrive, on average,
changing the response time of a request has no effect on overall
throughput. The arrival rate controls peak throughput."

The driver submits queries as a Poisson process (seeded, hence
deterministic) at a configured rate and measures response times —
the quantity that matters in an open system, where throughput is fixed
by arrivals whenever the system is stable. Use it to study how sharing
policies trade latency for capacity: sharing can *raise* the
sustainable arrival rate even while adding latency at light load.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.core.contention import ContentionLike
from repro.engine.costs import DEFAULT_COST_MODEL, CostModel
from repro.engine.engine import Engine
from repro.errors import WorkloadError
from repro.policies.base import SharingPolicy
from repro.policies.coordinator import SharingCoordinator
from repro.sim.events import Sleep
from repro.sim.simulator import Simulator
from repro.storage.catalog import Catalog
from repro.tpch.queries import build
from repro.workload.mixes import WorkloadMix

__all__ = ["OpenSystemResult", "run_open_system"]


@dataclass(frozen=True)
class OpenSystemResult:
    """Measurements from one open-system run.

    ``offered_load`` is the configured arrival rate; a stable system
    has ``completed ~= submitted`` and bounded response times. An
    overloaded system leaves ``backlog`` unfinished at the horizon.
    """

    policy: str
    processors: int
    arrival_rate: float
    horizon: float
    submitted: int
    completed: int
    mean_response_time: float
    max_response_time: float
    utilization: float

    @property
    def backlog(self) -> int:
        return self.submitted - self.completed

    @property
    def stable(self) -> bool:
        """Heuristic stability check: nearly everything completed."""
        return self.completed >= 0.95 * self.submitted


def run_open_system(
    catalog: Catalog,
    policy: SharingPolicy,
    mix: WorkloadMix,
    arrival_rate: float,
    processors: int,
    horizon: float,
    drain: float = 0.0,
    costs: CostModel = DEFAULT_COST_MODEL,
    contention: ContentionLike = None,
    seed: int = 0,
    queue_capacity: int = 4,
    page_rows: Optional[int] = None,
) -> OpenSystemResult:
    """Drive Poisson arrivals for ``horizon`` simulated time units.

    ``drain`` extends the run (with arrivals stopped) so in-flight
    queries can finish; response times count from submission.
    """
    if arrival_rate <= 0:
        raise WorkloadError(f"arrival_rate must be > 0, got {arrival_rate!r}")
    if horizon <= 0:
        raise WorkloadError(f"horizon must be > 0, got {horizon!r}")
    if drain < 0:
        raise WorkloadError(f"drain must be >= 0, got {drain!r}")

    sim = Simulator(processors=processors, contention=contention)
    engine_kwargs = dict(costs=costs, queue_capacity=queue_capacity)
    if page_rows is not None:
        engine_kwargs["page_rows"] = page_rows
    engine = Engine(catalog, sim, **engine_kwargs)
    coordinator = SharingCoordinator(engine, policy)

    queries = {name: build(name, catalog) for name in mix.weights}
    name_stream = mix.stream(client_id=0)
    rng = random.Random(seed)

    stats = {
        "submitted": 0,
        "completed": 0,
        "total_response": 0.0,
        "max_response": 0.0,
    }

    def arrival_process():
        while True:
            gap = -math.log(1.0 - rng.random()) / arrival_rate
            yield Sleep(gap)
            if sim.now >= horizon:
                return
            name = next(name_stream)
            stats["submitted"] += 1
            submitted_at = sim.now
            label = f"open/{name}#{stats['submitted']}"

            def done(handle, submitted_at=submitted_at):
                response = sim.now - submitted_at
                stats["completed"] += 1
                stats["total_response"] += response
                stats["max_response"] = max(stats["max_response"], response)

            coordinator.submit(queries[name], label, on_complete=done)

    sim.spawn(arrival_process(), name="arrivals")
    sim.run(until=horizon + drain)

    completed = stats["completed"]
    return OpenSystemResult(
        policy=policy.name,
        processors=processors,
        arrival_rate=arrival_rate,
        horizon=horizon,
        submitted=stats["submitted"],
        completed=completed,
        mean_response_time=(
            stats["total_response"] / completed if completed else float("inf")
        ),
        max_response_time=stats["max_response"],
        utilization=sim.utilization(),
    )
