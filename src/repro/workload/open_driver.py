"""Open-system workload driver (Section 5.1).

In an open system "arrivals are independent of each other; as long as
the system can process queries faster than they arrive, on average,
changing the response time of a request has no effect on overall
throughput. The arrival rate controls peak throughput."

The driver submits queries as a Poisson process (seeded, hence
deterministic) at a configured rate and measures response times —
the quantity that matters in an open system, where throughput is fixed
by arrivals whenever the system is stable. Use it to study how sharing
policies trade latency for capacity: sharing can *raise* the
sustainable arrival rate even while adding latency at light load.

The driver runs over the facade: pass a
:class:`~repro.db.session.Session` (arrivals then execute against its
engine, clock, and storage state) or a
:class:`~repro.storage.catalog.Catalog` plus a
:class:`~repro.db.config.RuntimeConfig`. The original hand-wired
signature (``processors=``, ``costs=``, ``contention=``,
``queue_capacity=``, ``page_rows=``) still works but is deprecated —
those knobs are exactly ``RuntimeConfig`` fields, and the config path
produces bit-identical results (the parity test pins this).

For a full *service tier* on top of this arrival process — admission
control, tenant isolation, mid-flight attach, latency percentiles —
see :class:`repro.server.Server`.
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.contention import ContentionLike
from repro.engine.costs import CostModel
from repro.errors import WorkloadError
from repro.policies.base import SharingPolicy
from repro.policies.coordinator import SharingCoordinator
from repro.sim.events import Sleep
from repro.tpch.queries import build
from repro.workload.mixes import WorkloadMix

__all__ = ["OpenSystemResult", "run_open_system"]

_LEGACY_KNOBS = (
    ("processors", "processors"),
    ("costs", "cost_model"),
    ("contention", "contention"),
    ("queue_capacity", "queue_capacity"),
    ("page_rows", "page_rows"),
)


@dataclass(frozen=True)
class OpenSystemResult:
    """Measurements from one open-system run.

    ``offered_load`` is the configured arrival rate; a stable system
    has ``completed ~= submitted`` and bounded response times. An
    overloaded system leaves ``backlog`` unfinished at the horizon.
    """

    policy: str
    processors: int
    arrival_rate: float
    horizon: float
    submitted: int
    completed: int
    mean_response_time: float
    max_response_time: float
    utilization: float

    @property
    def backlog(self) -> int:
        return self.submitted - self.completed

    @property
    def stable(self) -> bool:
        """Heuristic stability check: nearly everything completed."""
        return self.completed >= 0.95 * self.submitted


def run_open_system(
    catalog,
    policy: SharingPolicy,
    mix: WorkloadMix,
    arrival_rate: float,
    processors: Optional[int] = None,
    horizon: float = 0.0,
    drain: float = 0.0,
    costs: Optional[CostModel] = None,
    contention: ContentionLike = None,
    seed: int = 0,
    queue_capacity: Optional[int] = None,
    page_rows: Optional[int] = None,
    config=None,
) -> OpenSystemResult:
    """Drive Poisson arrivals for ``horizon`` simulated time units.

    ``catalog`` may be a :class:`~repro.db.session.Session` (the run
    executes on its engine and advances its clock) or a
    :class:`~repro.storage.catalog.Catalog`; with a catalog, pass
    ``config=`` a :class:`~repro.db.config.RuntimeConfig` describing
    the machine (default: the ungoverned 8-way). The individual
    ``processors``/``costs``/``contention``/``queue_capacity``/
    ``page_rows`` knobs are deprecated aliases for the matching
    config fields.

    ``drain`` extends the run (with arrivals stopped) so in-flight
    queries can finish; response times count from submission.
    """
    if arrival_rate <= 0:
        raise WorkloadError(f"arrival_rate must be > 0, got {arrival_rate!r}")
    if horizon <= 0:
        raise WorkloadError(f"horizon must be > 0, got {horizon!r}")
    if drain < 0:
        raise WorkloadError(f"drain must be >= 0, got {drain!r}")

    from repro.db.session import Database, Session

    legacy = {
        name: value
        for (name, _), value in zip(
            _LEGACY_KNOBS,
            (processors, costs, contention, queue_capacity, page_rows),
        )
        if value is not None
    }
    if isinstance(catalog, Session):
        if legacy or config is not None:
            raise WorkloadError(
                "a Session already fixes the machine: drop "
                f"{sorted(legacy) + (['config'] if config is not None else [])}"
            )
        session = catalog
    else:
        if legacy:
            warnings.warn(
                "run_open_system's engine knobs "
                f"({', '.join(sorted(legacy))}) are deprecated; pass "
                "config=RuntimeConfig(...) or a Session instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if config is not None:
                raise WorkloadError(
                    "pass either config= or the legacy engine knobs, not both"
                )
            from repro.db.config import RuntimeConfig

            config = RuntimeConfig(
                **{
                    field: legacy[name]
                    for name, field in _LEGACY_KNOBS
                    if name in legacy
                }
            )
        session = Database(catalog, config).session()

    sim = session.sim
    coordinator = SharingCoordinator(
        session.engine, policy, audit=session.audit_log()
    )

    queries = {name: build(name, session.catalog) for name in mix.weights}
    name_stream = mix.stream(client_id=0)
    rng = random.Random(seed)
    start = sim.now

    stats = {
        "submitted": 0,
        "completed": 0,
        "total_response": 0.0,
        "max_response": 0.0,
    }

    def arrival_process():
        while True:
            gap = -math.log(1.0 - rng.random()) / arrival_rate
            yield Sleep(gap)
            if sim.now - start >= horizon:
                return
            name = next(name_stream)
            stats["submitted"] += 1
            submitted_at = sim.now
            label = f"open/{name}#{stats['submitted']}"

            def done(handle, submitted_at=submitted_at):
                response = sim.now - submitted_at
                stats["completed"] += 1
                stats["total_response"] += response
                stats["max_response"] = max(stats["max_response"], response)

            coordinator.submit(queries[name], label, on_complete=done)

    sim.spawn(arrival_process(), name="arrivals")
    sim.run(until=start + horizon + drain)

    completed = stats["completed"]
    return OpenSystemResult(
        policy=policy.name,
        processors=session.config.processors,
        arrival_rate=arrival_rate,
        horizon=horizon,
        submitted=stats["submitted"],
        completed=completed,
        mean_response_time=(
            stats["total_response"] / completed if completed else float("inf")
        ),
        max_response_time=stats["max_response"],
        utilization=sim.utilization(),
    )
