"""Workload mixes: which query each client submits next.

Figure 6 varies "the relative frequency of Q4" in a Q1/Q4 mix; a
:class:`WorkloadMix` generalizes that to arbitrary weighted mixes with
a deterministic per-client sequence (seeded), so experiment runs are
reproducible.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.errors import WorkloadError

__all__ = ["WorkloadMix"]


class WorkloadMix:
    """A weighted distribution over query names."""

    def __init__(self, weights: Mapping[str, float], seed: int = 0) -> None:
        if not weights:
            raise WorkloadError("mix needs at least one query")
        for name, weight in weights.items():
            if weight < 0:
                raise WorkloadError(
                    f"negative weight for {name!r}: {weight!r}"
                )
        total = sum(weights.values())
        if total <= 0:
            raise WorkloadError("mix weights must sum to > 0")
        self.weights = {name: w / total for name, w in weights.items()}
        self.seed = seed
        self._names: Sequence[str] = tuple(self.weights)
        self._cum: list[float] = []
        acc = 0.0
        for name in self._names:
            acc += self.weights[name]
            self._cum.append(acc)

    @classmethod
    def single(cls, name: str, seed: int = 0) -> "WorkloadMix":
        return cls({name: 1.0}, seed=seed)

    @classmethod
    def two_way(cls, a: str, b: str, fraction_b: float,
                seed: int = 0) -> "WorkloadMix":
        """The Figure 6 shape: fraction ``fraction_b`` of query ``b``."""
        if not (0.0 <= fraction_b <= 1.0):
            raise WorkloadError(
                f"fraction must be in [0, 1], got {fraction_b!r}"
            )
        if fraction_b == 0.0:
            return cls.single(a, seed=seed)
        if fraction_b == 1.0:
            return cls.single(b, seed=seed)
        return cls({a: 1.0 - fraction_b, b: fraction_b}, seed=seed)

    def stream(self, client_id: int):
        """Infinite deterministic query-name stream for one client."""
        rng = random.Random((self.seed << 16) ^ client_id)
        while True:
            x = rng.random()
            for name, cum in zip(self._names, self._cum):
                if x <= cum:
                    yield name
                    break
            else:  # pragma: no cover - cum ends at 1.0
                yield self._names[-1]

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={w:.2f}" for n, w in self.weights.items())
        return f"WorkloadMix({inner})"
