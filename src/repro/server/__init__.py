"""The open-system service tier.

A long-running :class:`~repro.server.server.Server` over one
:class:`~repro.db.session.Session`: seeded Poisson or trace-driven
arrivals, admission control with explicit audited sheds
(:mod:`repro.server.admission`), mid-flight attach to in-flight
elevator groups through the
:class:`~repro.policies.coordinator.SharingCoordinator`, per-tenant
buffer-pool quotas, and deterministic open-system reporting
(goodput, p50/p99 response time — :mod:`repro.server.stats`).
"""

from repro.server.admission import (
    AdmissionPolicy,
    AdmissionView,
    AdmitAll,
    LatencyBound,
    QueueDepthBound,
)
from repro.server.server import (
    Arrival,
    ServedQuery,
    Server,
    ServerReport,
    TenantReport,
    poisson_arrivals,
)
from repro.server.stats import LatencyStats

__all__ = [
    "AdmissionPolicy",
    "AdmissionView",
    "AdmitAll",
    "LatencyBound",
    "QueueDepthBound",
    "Arrival",
    "LatencyStats",
    "ServedQuery",
    "Server",
    "ServerReport",
    "TenantReport",
    "poisson_arrivals",
]
