"""Admission control: decide at arrival time whether a query enters.

An open system cannot refuse to *receive* arrivals — the arrival rate
is the workload's, not the server's — but it can refuse to *hold*
them. Without admission control an overloaded server accumulates an
unbounded backlog and every response-time statistic diverges; with it
the queue stays bounded, excess arrivals are shed explicitly (recorded
in the session's :class:`~repro.obs.audit.AuditLog`), and the queries
that are admitted complete with the same bit-identical answers they
would produce solo — graceful degradation in the spirit of the
robust-at-every-budget discipline the spilling operators follow.

A policy sees one immutable :class:`AdmissionView` per arrival and
answers admit/shed. Two invariants every policy here maintains (and
the property suite checks):

* **Monotone shedding**: for a fixed in-flight count and service
  estimate, a policy that sheds at queue depth ``d`` sheds at every
  depth ``> d`` — load shedding never flickers back on as pressure
  rises.
* **Purity**: decisions depend only on the view, so identical arrival
  traces produce identical shed sequences (byte-identical audit logs
  across runs with the same seed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError

__all__ = [
    "AdmissionView",
    "AdmissionPolicy",
    "AdmitAll",
    "QueueDepthBound",
    "LatencyBound",
]


@dataclass(frozen=True)
class AdmissionView:
    """What an admission policy sees at one arrival instant.

    ``queue_depth`` counts arrivals waiting anywhere (the server's
    dispatch queue plus the coordinator's pending batches);
    ``in_flight`` counts queries launched and not yet complete;
    ``projected_latency`` is the server's running estimate of what a
    query admitted *now* would experience — ``(queue_depth +
    in_flight + 1) * service_estimate / processors``, with the
    service estimate an EWMA over completed queries (0 until the
    first completion, so latency bounds never shed a cold server).
    """

    queue_depth: int
    in_flight: int
    projected_latency: float
    tenant: str = "default"


class AdmissionPolicy:
    """Admit-or-shed verdict per arriving query."""

    name = "abstract"

    def admit(self, view: AdmissionView) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AdmitAll(AdmissionPolicy):
    """No admission control: every arrival is queued (unbounded)."""

    name = "admit-all"

    def admit(self, view: AdmissionView) -> bool:
        return True


class QueueDepthBound(AdmissionPolicy):
    """Shed once the waiting-queue depth reaches ``max_queue``.

    The classic bounded-buffer discipline: admitted work is bounded by
    ``max_queue + in_flight``, so response times of *admitted* queries
    stay bounded no matter the offered load.
    """

    name = "queue-depth"

    def __init__(self, max_queue: int) -> None:
        if max_queue < 1:
            raise PolicyError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue

    def admit(self, view: AdmissionView) -> bool:
        return view.queue_depth < self.max_queue

    def __repr__(self) -> str:
        return f"QueueDepthBound(max_queue={self.max_queue})"


class LatencyBound(AdmissionPolicy):
    """Shed when the projected response time exceeds ``bound``.

    Queue depth is a proxy; this bounds the quantity users feel. The
    projection is the server's EWMA service estimate scaled by the
    work ahead of the arrival, so the effective queue bound adapts to
    the workload: heavier queries ⇒ shorter admissible queue.
    """

    name = "latency-bound"

    def __init__(self, bound: float) -> None:
        if bound <= 0:
            raise PolicyError(f"latency bound must be > 0, got {bound}")
        self.bound = bound

    def admit(self, view: AdmissionView) -> bool:
        return view.projected_latency <= self.bound

    def __repr__(self) -> str:
        return f"LatencyBound(bound={self.bound})"
