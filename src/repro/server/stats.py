"""Deterministic latency statistics for the service tier.

Open-system experiments live and die by tail latency: the paper's
"straggler" critique of aggressive sharing is invisible in means and
only shows at p99. :class:`LatencyStats` collects response-time
samples and answers quantiles with the linear-interpolation estimator
(numpy's default), computed over a sorted copy — pure Python,
deterministic, no dependencies, and cheap at the few-thousand-sample
scale of the soak tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

__all__ = ["LatencyStats"]


class LatencyStats:
    """Streaming collection, exact quantiles on demand."""

    def __init__(self, samples: Iterable[float] = ()) -> None:
        self._samples: list = list(samples)
        self._sorted: Optional[list] = None

    def add(self, sample: float) -> None:
        self._samples.append(sample)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    @property
    def min(self) -> float:
        return min(self._samples) if self._samples else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) by linear interpolation
        between order statistics; 0.0 with no samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    def __repr__(self) -> str:
        if not self._samples:
            return "LatencyStats(empty)"
        return (
            f"LatencyStats(n={self.count}, mean={self.mean:.4g}, "
            f"p50={self.p50:.4g}, p99={self.p99:.4g}, max={self.max:.4g})"
        )
