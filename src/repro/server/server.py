"""The open-system service tier: a long-running server over one Session.

Every experiment before this one was *closed*: a fixed batch runs to
completion and the makespan is the answer. A deployed engine is
*open* — queries arrive on their own clock, and the question the paper
actually poses ("to share or not to share?") changes character: a
sharing decision that wins makespan can lose *response time* by
convoying latecomers behind a mega-group. :class:`Server` is the
harness that makes the open-system regime first-class:

* **Arrivals** come from a seeded Poisson process
  (:func:`poisson_arrivals`) or an explicit trace (any iterable of
  :class:`Arrival`), multiplexing any number of *tenants* onto one
  engine.
* **Admission control** (:mod:`repro.server.admission`) inspects
  queue depth / projected latency per arrival and sheds the excess —
  every shed is an explicit ``source="server"`` record in the
  session's audit log, so overload degrades to *bounded* queues and
  an *accounted* loss, never an unbounded backlog.
* **Dispatch** feeds admitted queries to a
  :class:`~repro.policies.coordinator.SharingCoordinator`, which
  merges same-operation arrivals into elevator groups; with
  cooperative scans configured, ``attach_inflight`` lets a late
  arrival attach to a group mid-revolution (the paper's simultaneous
  pipelining) instead of waiting for the group to drain.
* **Tenant isolation** comes from the config's
  :class:`~repro.storage.tenant_pool.TenantShare` partitions: each
  tenant's resident pages are capped at its share no matter how the
  arrival mix skews.

The :class:`ServerReport` a run returns carries the open-system
metrics the figures need — goodput (completions inside the arrival
horizon per unit time), p50/p99 response time, shed/backlog
conservation, per-tenant breakdowns — all in simulated time, so the
same seed reproduces the same report byte for byte.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.db.builder import Query
from repro.db.config import RuntimeConfig
from repro.db.session import Database, Session
from repro.engine.packet import QueryHandle
from repro.errors import EngineError, PolicyError
from repro.obs.trace import TID_SERVER
from repro.policies.base import SharingPolicy
from repro.policies.coordinator import SharingCoordinator
from repro.server.admission import AdmissionPolicy, AdmissionView, QueueDepthBound
from repro.server.stats import LatencyStats
from repro.sim.events import Sleep
from repro.storage.catalog import Catalog
from repro.storage.tenant_pool import TenantPartitionedPool
from repro.workload.mixes import WorkloadMix

__all__ = [
    "Arrival",
    "ServedQuery",
    "TenantReport",
    "ServerReport",
    "Server",
    "poisson_arrivals",
]

DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class Arrival:
    """One query arriving at the server at simulated time ``at``
    (relative to the start of the serve call), billed to ``tenant``."""

    at: float
    query: object  # a facade Query or a TpchQuery
    tenant: str = DEFAULT_TENANT
    label: str = ""

    def __post_init__(self) -> None:
        if self.at < 0:
            raise EngineError(f"arrival time must be >= 0, got {self.at}")


@dataclass
class ServedQuery:
    """The server-side record of one arrival, from submission to its
    terminal outcome (``completed`` / ``shed`` / ``backlog``)."""

    label: str
    name: str
    tenant: str
    submitted_at: float
    outcome: str = "backlog"
    admitted_at: Optional[float] = None
    finished_at: Optional[float] = None
    rows: Optional[tuple] = None

    @property
    def response_time(self) -> Optional[float]:
        """Arrival to completion, simulated time (None until done)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def queue_wait(self) -> Optional[float]:
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at


@dataclass
class TenantReport:
    """Per-tenant slice of one serve run."""

    tenant: str
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def backlog(self) -> int:
        return self.submitted - self.completed - self.shed


@dataclass
class ServerReport:
    """What one ``serve``/``serve_trace`` call measured.

    Conservation invariant (the soak tests' anchor): every arrival is
    in exactly one terminal bucket, so ``submitted == completed +
    shed + backlog`` — with ``backlog`` the queries still queued or
    running when the run's time budget expired.

    ``goodput`` counts completions that finished *within the arrival
    horizon* per unit of simulated time — completions during the
    drain tail keep their latency samples but do not inflate
    throughput at the measured load point.
    """

    arrival_rate: Optional[float]
    horizon: float
    submitted: int
    admitted: int
    shed: int
    completed: int
    backlog: int
    goodput: float
    latency: LatencyStats
    tenants: Dict[str, TenantReport]
    shared_submissions: int
    solo_submissions: int
    launched_group_sizes: Tuple[int, ...]
    records: Tuple[ServedQuery, ...]

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def max_group_size(self) -> int:
        return max(self.launched_group_sizes, default=0)

    def render(self) -> str:
        """A compact aligned summary, one tenant per line."""
        lines = [
            f"arrivals {self.submitted} (rate="
            + (f"{self.arrival_rate:g}" if self.arrival_rate else "trace")
            + f", horizon={self.horizon:g})  admitted {self.admitted}"
            f"  shed {self.shed}  completed {self.completed}"
            f"  backlog {self.backlog}",
            f"goodput {self.goodput:.4g}/t  latency p50 {self.latency.p50:.4g}"
            f"  p99 {self.latency.p99:.4g}  max {self.latency.max:.4g}",
            f"groups: {self.shared_submissions} shared / "
            f"{self.solo_submissions} solo, largest {self.max_group_size}",
        ]
        for tenant in sorted(self.tenants):
            t = self.tenants[tenant]
            lines.append(
                f"  tenant {tenant:<12} submitted {t.submitted:>5}  "
                f"completed {t.completed:>5}  shed {t.shed:>4}  "
                f"p99 {t.latency.p99:.4g}"
            )
        return "\n".join(lines)


def poisson_arrivals(
    mix: WorkloadMix,
    queries: Dict[str, object],
    arrival_rate: float,
    horizon: float,
    seed: int = 0,
    tenant_weights: Optional[Dict[str, float]] = None,
) -> List[Arrival]:
    """A deterministic Poisson arrival trace.

    Inter-arrival gaps are ``-ln(1 - U) / arrival_rate`` from one
    seeded generator (the exact process ``run_open_system`` uses, so
    server runs are comparable with the PR-3 driver at equal seeds);
    query names come from ``mix``'s deterministic stream and resolve
    through ``queries``; tenants are drawn by weight from a second
    stream derived from the same seed.
    """
    if arrival_rate <= 0:
        raise EngineError(f"arrival_rate must be > 0, got {arrival_rate}")
    if horizon <= 0:
        raise EngineError(f"horizon must be > 0, got {horizon}")
    rng = random.Random(seed)
    names = mix.stream(client_id=seed)
    tenants: Optional[List[str]] = None
    weights: Optional[List[float]] = None
    tenant_rng: Optional[random.Random] = None
    if tenant_weights:
        tenants = sorted(tenant_weights)
        weights = [tenant_weights[t] for t in tenants]
        tenant_rng = random.Random(seed + 0x7E4A47)
    arrivals: List[Arrival] = []
    now = 0.0
    while True:
        now += -math.log(1.0 - rng.random()) / arrival_rate
        if now >= horizon:
            break
        name = next(names)
        query = queries[name]
        tenant = (
            tenant_rng.choices(tenants, weights=weights)[0]
            if tenants is not None and tenant_rng is not None
            else DEFAULT_TENANT
        )
        arrivals.append(Arrival(at=now, query=query, tenant=tenant))
    return arrivals


class _AdvisorPolicy(SharingPolicy):
    """Adapter exposing the session's built-in outlook-driven advisor
    as a coordinator policy: each verdict re-profiles the live resource
    state (cold pages, spill pressure, drift), so the server's sharing
    behaviour adapts to load exactly as ``Session.run_all``'s does."""

    name = "advisor"

    def __init__(self, session: Session) -> None:
        self.session = session
        self.queries: Dict[str, object] = {}

    def should_share(self, query_name: str, m: int, n: int) -> bool:
        if m < 2:
            return False
        query = self.queries.get(query_name)
        if query is None:
            return False
        return self.session.advise(query, m).share

    def observe_group(self, query_name, group_size, tasks) -> None:
        pass


class Server:
    """A long-running open-system server over one :class:`Session`.

    Parameters
    ----------
    session:
        The session whose engine executes everything. Its simulated
        clock, cache state, and audit log persist across serve calls —
        a second ``serve`` starts against warm state.
    policy:
        Sharing policy for the coordinator (``AlwaysShare``,
        ``NeverShare``, ``ModelGuidedPolicy``, ...). ``None`` uses the
        session's built-in outlook-driven advisor, re-evaluated per
        prospective group against live resource state.
    admission:
        :class:`~repro.server.admission.AdmissionPolicy`; default
        bounds the waiting queue at 64 arrivals.
    max_inflight:
        Cap on concurrently *dispatched* queries; arrivals beyond it
        wait in the server's FIFO (and are recorded with outcome
        ``"queue"`` in the audit log). ``None`` dispatches on arrival.
    max_group_size:
        Forwarded to the coordinator: oversized pending batches split
        into several concurrent groups.
    attach_inflight:
        Mid-flight attach (simultaneous pipelining). ``None`` enables
        it exactly when the session has cooperative scans configured.
    keep_rows:
        Retain each completed query's result rows on its
        :class:`ServedQuery` record (the soak tests' bit-identical
        check). Disable for long benchmark runs.
    """

    def __init__(
        self,
        session: Session,
        policy: Optional[SharingPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        max_inflight: Optional[int] = None,
        max_group_size: Optional[int] = None,
        attach_inflight: Optional[bool] = None,
        keep_rows: bool = True,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise PolicyError(f"max_inflight must be >= 1, got {max_inflight}")
        self.session = session
        self.admission = admission if admission is not None else QueueDepthBound(64)
        self.max_inflight = max_inflight
        self.keep_rows = keep_rows
        if policy is None:
            policy = _AdvisorPolicy(session)
        self.policy = policy
        if attach_inflight is None:
            attach_inflight = session.scans is not None
        self.coordinator = SharingCoordinator(
            session.engine,
            policy,
            max_group_size=max_group_size,
            audit=session.audit_log(),
            attach_inflight=attach_inflight,
        )
        self._queue: deque = deque()
        self._inflight = 0
        self._service_ewma = 0.0
        self._ewma_alpha = 0.2
        # Lifetime counters (cumulative across serve calls) — these
        # back the ``server.*`` metric family.
        self.total_submitted = 0
        self.total_admitted = 0
        self.total_shed = 0
        self.total_completed = 0
        # Per-run state, reset at the top of each _run.
        self._records: List[ServedQuery] = []
        self._latency = LatencyStats()
        self._tenants: Dict[str, TenantReport] = {}
        self._run_ctx: Tuple[float, float, List[int]] = (0.0, math.inf, [0])
        session.metrics().register_group(self._metric_family)

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls,
        catalog: Catalog,
        config: Union[RuntimeConfig, str, None] = None,
        policy: Optional[SharingPolicy] = None,
        **server_kwargs,
    ) -> "Server":
        """One-call entry point: open a fresh session and serve on it."""
        return cls(Database(catalog, config).session(), policy=policy, **server_kwargs)

    # -- observability -----------------------------------------------------

    def _metric_family(self) -> Dict[str, float]:
        family = {
            "server.submitted": float(self.total_submitted),
            "server.admitted": float(self.total_admitted),
            "server.shed": float(self.total_shed),
            "server.completed": float(self.total_completed),
            "server.queue_depth": float(self._queue_depth()),
            "server.in_flight": float(self._inflight),
        }
        pool = self.session.pool
        if isinstance(pool, TenantPartitionedPool):
            for partition, resident in pool.tenant_residency().items():
                family[f"tenant.{partition}.resident"] = float(resident)
                family[f"tenant.{partition}.quota"] = float(
                    pool.quota_of(partition)
                )
        return family

    def _trace(self, name: str, **args) -> None:
        tracer = self.session.tracer
        if tracer is not None:
            tracer.instant(name, "server", tid=TID_SERVER, **args)

    # -- admission ---------------------------------------------------------

    def _queue_depth(self) -> int:
        return len(self._queue) + self.coordinator.queued_count()

    def view(self, tenant: str = DEFAULT_TENANT) -> AdmissionView:
        """The admission view an arrival would see right now."""
        depth = self._queue_depth()
        pending = self.coordinator.pending_count()
        running = max(0, self._inflight - pending)
        projected = (
            (depth + running + 1)
            * self._service_ewma
            / self.session.config.processors
        )
        return AdmissionView(
            queue_depth=depth,
            in_flight=running,
            projected_latency=projected,
            tenant=tenant,
        )

    # -- the serve loop ----------------------------------------------------

    def serve(
        self,
        mix: WorkloadMix,
        queries: Dict[str, object],
        arrival_rate: float,
        horizon: float,
        drain: float = 0.0,
        seed: int = 0,
        tenant_weights: Optional[Dict[str, float]] = None,
    ) -> ServerReport:
        """Run a seeded Poisson arrival stream for ``horizon`` of
        simulated time (plus ``drain`` with arrivals stopped), and
        report what happened."""
        arrivals = poisson_arrivals(
            mix,
            queries,
            arrival_rate,
            horizon,
            seed=seed,
            tenant_weights=tenant_weights,
        )
        return self._run(arrivals, horizon, drain, arrival_rate=arrival_rate)

    def serve_trace(
        self,
        arrivals: Sequence[Arrival],
        horizon: Optional[float] = None,
        drain: float = 0.0,
    ) -> ServerReport:
        """Run an explicit arrival trace. ``horizon`` defaults to just
        past the last arrival; the run stops at ``horizon + drain``."""
        arrivals = sorted(arrivals, key=lambda a: a.at)
        if horizon is None:
            horizon = arrivals[-1].at if arrivals else 0.0
        return self._run(list(arrivals), horizon, drain, arrival_rate=None)

    def _run(
        self,
        arrivals: List[Arrival],
        horizon: float,
        drain: float,
        arrival_rate: Optional[float],
    ) -> ServerReport:
        if drain < 0:
            raise EngineError(f"drain must be >= 0, got {drain}")
        session = self.session
        start = session.sim.now
        self._records = []
        self._latency = LatencyStats()
        self._tenants = {}
        run_completed_in_horizon = [0]
        self._run_ctx = (start, horizon, run_completed_in_horizon)
        shared_before = self.coordinator.shared_submissions
        solo_before = self.coordinator.solo_submissions
        groups_before = len(self.coordinator.launched_group_sizes)

        def arrival_process():
            for index, arrival in enumerate(arrivals):
                gap = (start + arrival.at) - session.sim.now
                if gap > 0:
                    yield Sleep(gap)
                self._on_arrival(arrival, index)

        session.sim.spawn(arrival_process(), name="server/arrivals")
        session.sim.run(until=start + horizon + drain)

        tenants = self._tenants
        submitted = len(self._records)
        shed = sum(1 for r in self._records if r.outcome == "shed")
        completed = sum(1 for r in self._records if r.outcome == "completed")
        backlog = submitted - shed - completed
        elapsed = max(horizon, 1e-12)
        report = ServerReport(
            arrival_rate=arrival_rate,
            horizon=horizon,
            submitted=submitted,
            admitted=submitted - shed,
            shed=shed,
            completed=completed,
            backlog=backlog,
            goodput=run_completed_in_horizon[0] / elapsed,
            latency=self._latency,
            tenants=tenants,
            shared_submissions=self.coordinator.shared_submissions - shared_before,
            solo_submissions=self.coordinator.solo_submissions - solo_before,
            launched_group_sizes=tuple(
                self.coordinator.launched_group_sizes[groups_before:]
            ),
            records=tuple(self._records),
        )
        return report

    # -- per-arrival path --------------------------------------------------

    def _tenant_report(self, tenant: str) -> TenantReport:
        report = self._tenants.get(tenant)
        if report is None:
            report = self._tenants[tenant] = TenantReport(tenant=tenant)
        return report

    def _on_arrival(self, arrival: Arrival, index: int) -> None:
        session = self.session
        now = session.sim.now
        name = getattr(arrival.query, "name", "query")
        label = arrival.label or f"{arrival.tenant}/{name}#{index}"
        record = ServedQuery(
            label=label,
            name=name,
            tenant=arrival.tenant,
            submitted_at=now,
        )
        self._records.append(record)
        self.total_submitted += 1
        tenant = self._tenant_report(arrival.tenant)
        tenant.submitted += 1
        self._trace("arrive", label=label, tenant=arrival.tenant)

        view = self.view(arrival.tenant)
        if not self.admission.admit(view):
            record.outcome = "shed"
            self.total_shed += 1
            tenant.shed += 1
            session.audit_log().append(
                query=name,
                signature="",
                group_size=1,
                source="server",
                outcome="shed",
                decided_at=now,
            )
            self._trace(
                "shed",
                label=label,
                tenant=arrival.tenant,
                queue_depth=view.queue_depth,
            )
            return

        self.total_admitted += 1
        self._register_query(arrival.query)
        gated = (
            self.max_inflight is not None and self._inflight >= self.max_inflight
        )
        self._queue.append((record, arrival.query))
        if gated:
            session.audit_log().append(
                query=name,
                signature="",
                group_size=1,
                source="server",
                outcome="queue",
                decided_at=now,
            )
        self._dispatch()

    def _register_query(self, query: object) -> None:
        if isinstance(self.policy, _AdvisorPolicy):
            name = getattr(query, "name", None)
            if name is not None and name not in self.policy.queries:
                # Normalize to a facade Query so the advisor can
                # profile it (TpchQuery carries ``pivot``, not
                # ``pivot_op_id``).
                if not isinstance(query, Query):
                    query = Query(
                        plan=query.plan,
                        pivot_op_id=getattr(query, "pivot", None),
                        name=name,
                    )
                self.policy.queries[name] = query

    def _dispatch(self) -> None:
        while self._queue and (
            self.max_inflight is None or self._inflight < self.max_inflight
        ):
            record, query = self._queue.popleft()
            record.admitted_at = self.session.sim.now
            self._inflight += 1
            self._trace("dispatch", label=record.label, tenant=record.tenant)
            self.coordinator.submit(
                query,
                record.label,
                on_complete=self._completion(record),
            )

    def _completion(
        self, record: ServedQuery
    ) -> Callable[[QueryHandle], None]:
        def on_done(handle: QueryHandle) -> None:
            now = self.session.sim.now
            record.finished_at = now
            record.outcome = "completed"
            if self.keep_rows:
                record.rows = tuple(handle.rows)
            self._inflight -= 1
            self.total_completed += 1
            response = record.response_time or 0.0
            service = now - (record.admitted_at or record.submitted_at)
            self._service_ewma = (
                service
                if self._service_ewma == 0.0
                else (1 - self._ewma_alpha) * self._service_ewma
                + self._ewma_alpha * service
            )
            self._latency.add(response)
            tenant = self._tenant_report(record.tenant)
            tenant.completed += 1
            tenant.latency.add(response)
            start, horizon, counter = self._run_ctx
            if now - start <= horizon:
                counter[0] += 1
            self._trace(
                "complete",
                label=record.label,
                tenant=record.tenant,
                response=response,
            )
            self._dispatch()

        return on_done

    def __repr__(self) -> str:
        return (
            f"Server({self.session!r}, admission={self.admission!r}, "
            f"inflight={self._inflight}, queued={self._queue_depth()})"
        )
