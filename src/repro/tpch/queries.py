"""Physical plans for the paper's TPC-H query suite (Q1, Q4, Q6, Q13).

The paper picks two scan-heavy queries (Q1, Q6) that share at the scan
stage and two join-heavy queries (Q4, Q13) that share at the join
(Section 3.1). Each builder returns a :class:`TpchQuery` carrying the
plan, its designated ``pivot`` op_id, and a label.

Plan structure follows the paper's stage decomposition:

* **Q1/Q6** are two-stage pipelines — a *fused* scan stage (scan +
  predicate + result projection over LINEITEM) feeding an aggregation.
  The fused scan is the pivot; its per-consumer output of qualifying
  tuples is the model's *s*. Like the paper we fix the predicate
  constants; they are chosen (within the spec's value domains) so the
  scan stage's output work is comparable to its input work — the
  regime the paper measured for Q6 (w = 9.66, s = 10.34), which is
  precisely what makes scan sharing serialize badly on many cores.
* **Q4** filters ORDERS to a three-month window, semi-joins against
  LINEITEM rows with ``l_commitdate < l_receiptdate``, then counts by
  order priority. The semi hash join is the pivot: it emits few rows
  relative to the work below it, so sharing is nearly free — the
  always-wins regime of Figure 2 (right).
* **Q13** left-outer-joins CUSTOMER with non-"special requests"
  ORDERS, counts orders per customer and then customers per count.
  The join is again the pivot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expressions import add, and_, col, lt, mul, not_, sub, udf
from repro.engine.plan import (
    AggSpec,
    PlanNode,
    aggregate,
    filter_,
    hash_join,
    project,
    scan,
    sort,
)
from repro.storage.catalog import Catalog
from repro.storage.schema import DataType, date_to_ordinal
from repro.tpch.text import matches_special_requests

__all__ = ["TpchQuery", "q1", "q4", "q6", "q13", "QUERIES", "build"]

_F = DataType.FLOAT
_I = DataType.INT
_S = DataType.STR


@dataclass(frozen=True)
class TpchQuery:
    """A ready-to-execute query with its sharing pivot."""

    name: str
    plan: PlanNode
    pivot: str
    kind: str  # "scan-heavy" | "join-heavy"

    def pivot_node(self) -> PlanNode:
        return self.plan.find(self.pivot)


def q1(catalog: Catalog) -> TpchQuery:
    """Pricing summary report (scan-heavy; shares at the scan stage).

    The spec's shipdate cutoff keeps ~97% of LINEITEM, so the scan
    stage forwards nearly the whole table to the aggregation — a
    high-volume pivot output.
    """
    cutoff = date_to_ordinal(1998, 12, 1) - 90
    scan_stage = scan(
        catalog,
        "lineitem",
        columns=[
            "l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
            "l_discount", "l_tax", "l_shipdate",
        ],
        predicate=lt(col("l_shipdate"), cutoff + 1),  # shipdate <= cutoff
        outputs=[
            ("l_returnflag", col("l_returnflag"), _S),
            ("l_linestatus", col("l_linestatus"), _S),
            ("l_quantity", col("l_quantity"), _F),
            ("l_extendedprice", col("l_extendedprice"), _F),
            ("l_discount", col("l_discount"), _F),
            ("disc_price", mul(col("l_extendedprice"),
                               sub(1.0, col("l_discount"))), _F),
            ("charge", mul(mul(col("l_extendedprice"),
                               sub(1.0, col("l_discount"))),
                           add(1.0, col("l_tax"))), _F),
        ],
        op_id="q1_scan",
        # Q1's scan stage evaluates eight decimal expressions per
        # qualifying tuple — far heavier per tuple than Q6's integer
        # comparisons.
        cost_factor=2.5,
    )
    agg = aggregate(
        scan_stage,
        group_by=["l_returnflag", "l_linestatus"],
        aggs=[
            AggSpec("sum", "sum_qty", col("l_quantity")),
            AggSpec("sum", "sum_base_price", col("l_extendedprice")),
            AggSpec("sum", "sum_disc_price", col("disc_price")),
            AggSpec("sum", "sum_charge", col("charge")),
            AggSpec("avg", "avg_qty", col("l_quantity")),
            AggSpec("avg", "avg_price", col("l_extendedprice")),
            AggSpec("avg", "avg_disc", col("l_discount")),
            AggSpec("count", "count_order"),
        ],
        op_id="q1_agg",
    )
    plan = sort(agg, [("l_returnflag", True), ("l_linestatus", True)],
                op_id="q1_sort")
    return TpchQuery(name="q1", plan=plan, pivot="q1_scan", kind="scan-heavy")


def q6(catalog: Catalog) -> TpchQuery:
    """Forecasting revenue change (scan-heavy; shares at the scan).

    Two stages exactly as in Section 4.4: fused scan then a scalar
    aggregation. The fixed predicate constants keep roughly half the
    table (the paper fixes its predicates too and its measured scan
    stage spent ~52% of its time on output — s/(w+s) = 10.34/20).
    """
    date_lo = date_to_ordinal(1993, 1, 1)
    date_hi = date_to_ordinal(1996, 1, 1)
    predicate = and_(
        lt(date_lo - 1, col("l_shipdate")),
        lt(col("l_shipdate"), date_hi),
        lt(col("l_discount"), 0.09),
        lt(col("l_quantity"), 45.0),
    )
    scan_stage = scan(
        catalog,
        "lineitem",
        columns=["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
        predicate=predicate,
        op_id="q6_scan",
    )
    plan = aggregate(
        scan_stage,
        group_by=[],
        aggs=[
            AggSpec(
                "sum",
                "revenue",
                mul(col("l_extendedprice"), col("l_discount")),
            )
        ],
        op_id="q6_agg",
    )
    return TpchQuery(name="q6", plan=plan, pivot="q6_scan", kind="scan-heavy")


def q4(catalog: Catalog) -> TpchQuery:
    """Order priority checking (join-heavy; shares at the join).

    ORDERS in a three-month window, kept only if some lineitem of the
    order has ``l_commitdate < l_receiptdate`` (EXISTS -> semi join on
    a hash of qualifying orderkeys), counted by priority.
    """
    date_lo = date_to_ordinal(1993, 7, 1)
    date_hi = date_to_ordinal(1993, 10, 1)
    # Unfused multi-stage sides: join-heavy plans are deep pipelines
    # with real intra-query parallelism (scan / filter / project run
    # concurrently), which is what lets shared join execution keep
    # multiple contexts busy.
    lineitem_side = project(
        filter_(
            scan(
                catalog,
                "lineitem",
                columns=["l_orderkey", "l_commitdate", "l_receiptdate"],
                op_id="q4_lineitem_scan",
            ),
            lt(col("l_commitdate"), col("l_receiptdate")),
            op_id="q4_lineitem_filter",
        ),
        [("l_orderkey", col("l_orderkey"), _I)],
        op_id="q4_lineitem_project",
    )
    orders_side = project(
        filter_(
            scan(
                catalog,
                "orders",
                columns=["o_orderkey", "o_orderdate", "o_orderpriority"],
                op_id="q4_orders_scan",
            ),
            and_(
                lt(date_lo - 1, col("o_orderdate")),
                lt(col("o_orderdate"), date_hi),
            ),
            op_id="q4_orders_filter",
        ),
        [
            ("o_orderkey", col("o_orderkey"), _I),
            ("o_orderpriority", col("o_orderpriority"), _S),
        ],
        op_id="q4_orders_project",
    )
    join = hash_join(
        build=lineitem_side,
        probe=orders_side,
        build_key="l_orderkey",
        probe_key="o_orderkey",
        join_type="semi",
        op_id="q4_join",
    )
    agg = aggregate(
        join,
        group_by=["o_orderpriority"],
        aggs=[AggSpec("count", "order_count")],
        op_id="q4_agg",
    )
    plan = sort(agg, [("o_orderpriority", True)], op_id="q4_sort")
    return TpchQuery(name="q4", plan=plan, pivot="q4_join", kind="join-heavy")


def q13(catalog: Catalog) -> TpchQuery:
    """Customer distribution (join-heavy; shares at the join).

    CUSTOMER left-outer-joined with ORDERS whose comment does not
    match ``%special%requests%``; count orders per customer, then the
    distribution of those counts.

    The physical plan uses the standard group-pushdown: orders are
    counted per customer *below* the join, so the join's build input
    and output are one row per active customer. With the heavy work
    (orders scan + pre-aggregation + build) below the pivot and only
    compact per-customer counts multiplexed above it, the per-sharer
    pivot cost is "insignificant compared to the work performed by the
    scan and the rest of the join" (Section 3.3) — the always-wins
    regime of Figure 2 (right).
    """
    orders_side = project(
        filter_(
            scan(
                catalog,
                "orders",
                columns=["o_orderkey", "o_custkey", "o_comment"],
                op_id="q13_orders_scan",
            ),
            not_(
                udf("special_requests", matches_special_requests,
                    col("o_comment"))
            ),
            op_id="q13_orders_filter",
            # LIKE '%special%requests%' scans the comment string; string
            # matching is an order of magnitude dearer than the integer
            # comparisons the base filter cost assumes.
            cost_factor=8.0,
        ),
        [("o_custkey", col("o_custkey"), _I)],
        op_id="q13_orders_project",
    )
    order_counts = aggregate(
        orders_side,
        group_by=["o_custkey"],
        aggs=[AggSpec("count", "ct")],
        op_id="q13_precount",
    )
    customer_side = scan(
        catalog,
        "customer",
        columns=["c_custkey"],
        op_id="q13_customer",
    )
    join = hash_join(
        build=order_counts,
        probe=customer_side,
        build_key="o_custkey",
        probe_key="c_custkey",
        join_type="left",
        op_id="q13_join",
    )
    c_count = project(
        join,
        [("c_count",
          udf("coalesce0", lambda v: 0 if v is None else v, col("ct")), _I)],
        op_id="q13_c_count",
    )
    distribution = aggregate(
        c_count,
        group_by=["c_count"],
        aggs=[AggSpec("count", "custdist")],
        op_id="q13_distribution",
    )
    plan = sort(distribution, [("custdist", False), ("c_count", False)],
                op_id="q13_sort")
    return TpchQuery(name="q13", plan=plan, pivot="q13_join", kind="join-heavy")


QUERIES = {"q1": q1, "q4": q4, "q6": q6, "q13": q13}


def build(name: str, catalog: Catalog) -> TpchQuery:
    """Build one of the suite's queries by name."""
    try:
        builder = QUERIES[name]
    except KeyError:
        raise KeyError(
            f"unknown TPC-H query {name!r}; available: {sorted(QUERIES)}"
        ) from None
    return builder(catalog)
