"""TPC-H substrate: schemas, deterministic dbgen, and query plans.

:mod:`repro.tpch.generator` builds the memory-resident database; the
query plan builders for the paper's suite (Q1, Q4, Q6, Q13) live in
:mod:`repro.tpch.queries` (engine plans plus matching model specs).
"""

from repro.tpch.generator import END_DATE, START_DATE, GeneratorConfig, generate
from repro.tpch.schema import ALL_TABLES

__all__ = [
    "generate",
    "GeneratorConfig",
    "START_DATE",
    "END_DATE",
    "ALL_TABLES",
]
