"""Deterministic random streams for data generation.

Every TPC-H table gets its own seeded stream derived from a master
seed and the table name, so regenerating one table (or adding a new
one) never perturbs the others — the property dbgen achieves with its
per-column seed tables. Streams are thin wrappers over
:class:`random.Random`, whose sequence is stable across CPython
releases for the methods used here.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["Stream", "stream_for"]


class Stream:
    """A seeded random stream with the generator's helper draws."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def uniform_int(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._rng.randint(lo, hi)

    def uniform_float(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def choice(self, options):
        return self._rng.choice(options)

    def sample_bool(self, probability: float) -> bool:
        return self._rng.random() < probability

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)


def stream_for(master_seed: int, name: str) -> Stream:
    """Derive a per-table stream from the master seed and a label."""
    derived = master_seed ^ zlib.crc32(name.encode("utf-8"))
    return Stream(derived)
