"""TPC-H table schemas (TPC Benchmark H, revision 2.6.0).

All eight tables are defined; the paper's query suite (Q1, Q4, Q6,
Q13) touches LINEITEM, ORDERS and CUSTOMER, but the generator
populates the full schema so further TPC-H queries can be added
without touching the substrate. Column subsets irrelevant to any
implemented query keep the spec's names and types.
"""

from __future__ import annotations

from repro.storage.schema import DataType, Schema

__all__ = [
    "REGION",
    "NATION",
    "SUPPLIER",
    "CUSTOMER",
    "PART",
    "PARTSUPP",
    "ORDERS",
    "LINEITEM",
    "ALL_TABLES",
]

_I = DataType.INT
_F = DataType.FLOAT
_S = DataType.STR
_D = DataType.DATE

REGION = Schema([
    ("r_regionkey", _I),
    ("r_name", _S),
    ("r_comment", _S),
])

NATION = Schema([
    ("n_nationkey", _I),
    ("n_name", _S),
    ("n_regionkey", _I),
    ("n_comment", _S),
])

SUPPLIER = Schema([
    ("s_suppkey", _I),
    ("s_name", _S),
    ("s_address", _S),
    ("s_nationkey", _I),
    ("s_phone", _S),
    ("s_acctbal", _F),
    ("s_comment", _S),
])

CUSTOMER = Schema([
    ("c_custkey", _I),
    ("c_name", _S),
    ("c_address", _S),
    ("c_nationkey", _I),
    ("c_phone", _S),
    ("c_acctbal", _F),
    ("c_mktsegment", _S),
    ("c_comment", _S),
])

PART = Schema([
    ("p_partkey", _I),
    ("p_name", _S),
    ("p_mfgr", _S),
    ("p_brand", _S),
    ("p_type", _S),
    ("p_size", _I),
    ("p_container", _S),
    ("p_retailprice", _F),
    ("p_comment", _S),
])

PARTSUPP = Schema([
    ("ps_partkey", _I),
    ("ps_suppkey", _I),
    ("ps_availqty", _I),
    ("ps_supplycost", _F),
    ("ps_comment", _S),
])

ORDERS = Schema([
    ("o_orderkey", _I),
    ("o_custkey", _I),
    ("o_orderstatus", _S),
    ("o_totalprice", _F),
    ("o_orderdate", _D),
    ("o_orderpriority", _S),
    ("o_clerk", _S),
    ("o_shippriority", _I),
    ("o_comment", _S),
])

LINEITEM = Schema([
    ("l_orderkey", _I),
    ("l_partkey", _I),
    ("l_suppkey", _I),
    ("l_linenumber", _I),
    ("l_quantity", _F),
    ("l_extendedprice", _F),
    ("l_discount", _F),
    ("l_tax", _F),
    ("l_returnflag", _S),
    ("l_linestatus", _S),
    ("l_shipdate", _D),
    ("l_commitdate", _D),
    ("l_receiptdate", _D),
    ("l_shipinstruct", _S),
    ("l_shipmode", _S),
    ("l_comment", _S),
])

ALL_TABLES = {
    "region": REGION,
    "nation": NATION,
    "supplier": SUPPLIER,
    "customer": CUSTOMER,
    "part": PART,
    "partsupp": PARTSUPP,
    "orders": ORDERS,
    "lineitem": LINEITEM,
}
