"""Deterministic TPC-H database generator.

A from-scratch, laptop-scale dbgen: at scale factor 1.0 the spec's
cardinalities are 150k customers / 1.5M orders / ~6M lineitems; the
reproduction defaults to a small fraction of that, preserving the
*relative* cardinalities and every distribution the implemented
queries depend on:

* order dates uniform over [1992-01-01, 1998-08-02] (Q1, Q4, Q6
  windows select the spec's fractions of rows),
* ship/commit/receipt dates offset from the order date exactly as the
  spec prescribes (Q4's ``l_commitdate < l_receiptdate`` holds for a
  realistic ~50% of lineitems; Q1's shipdate cutoff keeps ~98%),
* one third of customers have no orders (Q13's zero-order spike),
* ~2% of order comments match ``%special%requests%`` (Q13's filter),
* five order priorities uniform (Q4's groups),
* quantity/discount uniform (Q6's selectivity ~2%).

Everything is seeded; the same ``(scale_factor, seed)`` pair always
yields the identical database.
"""

from __future__ import annotations

import datetime as _dt

from repro.errors import StorageError
from repro.storage.catalog import Catalog
from repro.tpch import schema as tpch_schema
from repro.tpch.rng import Stream, stream_for
from repro.tpch.text import SPECIAL_REQUEST_PROBABILITY, comment

__all__ = ["generate", "GeneratorConfig", "START_DATE", "END_DATE"]

START_DATE = _dt.date(1992, 1, 1).toordinal()
END_DATE = _dt.date(1998, 8, 2).toordinal()

_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
_NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
)
_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
_SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
_SHIP_INSTRUCT = (
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
)
_ORDER_STATUS = ("O", "F", "P")
_CONTAINERS = ("SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG")
_TYPES = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
_BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))


class GeneratorConfig:
    """Cardinalities derived from the scale factor.

    ``scale_factor=1.0`` matches the TPC-H spec; the reproduction's
    experiments default to much smaller databases (the paper used a
    1 GB database purely to be memory-resident, which ours always is).
    """

    def __init__(self, scale_factor: float = 0.01, seed: int = 2007) -> None:
        if scale_factor <= 0:
            raise StorageError(f"scale_factor must be > 0, got {scale_factor!r}")
        self.scale_factor = scale_factor
        self.seed = seed
        self.customers = max(int(150_000 * scale_factor), 50)
        self.orders_per_customer = 10  # spec: 1.5M orders per 150k customers
        self.parts = max(int(200_000 * scale_factor), 40)
        self.suppliers = max(int(10_000 * scale_factor), 10)

    def __repr__(self) -> str:
        return (
            f"GeneratorConfig(sf={self.scale_factor}, seed={self.seed}, "
            f"customers={self.customers})"
        )


def _populate_region(catalog: Catalog, stream: Stream) -> None:
    table = catalog.create("region", tpch_schema.REGION)
    for key, name in enumerate(_REGIONS):
        table.insert((key, name, comment(stream)))


def _populate_nation(catalog: Catalog, stream: Stream) -> None:
    table = catalog.create("nation", tpch_schema.NATION)
    for key, name in enumerate(_NATIONS):
        table.insert((key, name, key % len(_REGIONS), comment(stream)))


def _populate_supplier(catalog: Catalog, stream: Stream, config: GeneratorConfig) -> None:
    table = catalog.create("supplier", tpch_schema.SUPPLIER)
    for key in range(1, config.suppliers + 1):
        table.insert((
            key,
            f"Supplier#{key:09d}",
            f"addr-{stream.uniform_int(1000, 9999)}",
            stream.uniform_int(0, len(_NATIONS) - 1),
            f"{stream.uniform_int(10, 34)}-{stream.uniform_int(100, 999)}-"
            f"{stream.uniform_int(100, 999)}-{stream.uniform_int(1000, 9999)}",
            round(stream.uniform_float(-999.99, 9999.99), 2),
            comment(stream),
        ))


def _populate_part(catalog: Catalog, stream: Stream, config: GeneratorConfig) -> None:
    table = catalog.create("part", tpch_schema.PART)
    for key in range(1, config.parts + 1):
        table.insert((
            key,
            f"part {key} {stream.choice(_TYPES).lower()}",
            f"Manufacturer#{stream.uniform_int(1, 5)}",
            stream.choice(_BRANDS),
            stream.choice(_TYPES),
            stream.uniform_int(1, 50),
            stream.choice(_CONTAINERS),
            round(900 + key / 10 % 1000 + 0.01 * (key % 100), 2),
            comment(stream),
        ))


def _populate_partsupp(catalog: Catalog, stream: Stream, config: GeneratorConfig) -> None:
    table = catalog.create("partsupp", tpch_schema.PARTSUPP)
    for part_key in range(1, config.parts + 1):
        for _ in range(2):  # spec has 4 per part; 2 keeps small SFs lean
            table.insert((
                part_key,
                stream.uniform_int(1, config.suppliers),
                stream.uniform_int(1, 9999),
                round(stream.uniform_float(1.0, 1000.0), 2),
                comment(stream),
            ))


def _populate_customer(catalog: Catalog, stream: Stream, config: GeneratorConfig) -> None:
    table = catalog.create("customer", tpch_schema.CUSTOMER)
    for key in range(1, config.customers + 1):
        table.insert((
            key,
            f"Customer#{key:09d}",
            f"addr-{stream.uniform_int(1000, 9999)}",
            stream.uniform_int(0, len(_NATIONS) - 1),
            f"{stream.uniform_int(10, 34)}-{stream.uniform_int(100, 999)}-"
            f"{stream.uniform_int(100, 999)}-{stream.uniform_int(1000, 9999)}",
            round(stream.uniform_float(-999.99, 9999.99), 2),
            stream.choice(_SEGMENTS),
            comment(stream),
        ))


def _populate_orders_and_lineitem(
    catalog: Catalog, stream: Stream, config: GeneratorConfig
) -> None:
    orders = catalog.create("orders", tpch_schema.ORDERS)
    lineitem = catalog.create("lineitem", tpch_schema.LINEITEM)

    order_key = 0
    total_orders = config.customers * config.orders_per_customer
    for i in range(total_orders):
        order_key += stream.uniform_int(1, 4)  # sparse keys, as in the spec
        # Spec: only two thirds of customers have orders (Q13's spike).
        cust_key = stream.uniform_int(1, config.customers)
        cust_key -= cust_key % 3 == 0  # fold multiples of 3 onto neighbours
        cust_key = max(cust_key, 1)
        order_date = stream.uniform_int(START_DATE, END_DATE - 151)
        n_lines = stream.uniform_int(1, 7)
        plant = stream.sample_bool(SPECIAL_REQUEST_PROBABILITY)
        status = stream.choice(_ORDER_STATUS)

        total_price = 0.0
        lines = []
        for line_no in range(1, n_lines + 1):
            quantity = float(stream.uniform_int(1, 50))
            extended = round(quantity * stream.uniform_float(900.0, 1100.0), 2)
            discount = round(stream.uniform_int(0, 10) / 100.0, 2)
            tax = round(stream.uniform_int(0, 8) / 100.0, 2)
            ship = order_date + stream.uniform_int(1, 121)
            commit = order_date + stream.uniform_int(30, 90)
            receipt = ship + stream.uniform_int(1, 30)
            returnflag = stream.choice(("R", "A")) if stream.sample_bool(0.5) else "N"
            linestatus = "O" if stream.sample_bool(0.5) else "F"
            total_price += extended
            lines.append((
                order_key,
                stream.uniform_int(1, config.parts),
                stream.uniform_int(1, config.suppliers),
                line_no,
                quantity,
                extended,
                discount,
                tax,
                returnflag,
                linestatus,
                ship,
                commit,
                receipt,
                stream.choice(_SHIP_INSTRUCT),
                stream.choice(_SHIP_MODES),
                comment(stream, min_words=2, max_words=5),
            ))

        orders.insert((
            order_key,
            cust_key,
            status,
            round(total_price, 2),
            order_date,
            stream.choice(_PRIORITIES),
            f"Clerk#{stream.uniform_int(1, 1000):09d}",
            0,
            comment(stream, plant_special=plant),
        ))
        for line in lines:
            lineitem.insert(line)


def generate(scale_factor: float = 0.01, seed: int = 2007) -> Catalog:
    """Build the full TPC-H catalog at the given scale factor."""
    config = GeneratorConfig(scale_factor=scale_factor, seed=seed)
    catalog = Catalog()
    _populate_region(catalog, stream_for(seed, "region"))
    _populate_nation(catalog, stream_for(seed, "nation"))
    _populate_supplier(catalog, stream_for(seed, "supplier"), config)
    _populate_part(catalog, stream_for(seed, "part"), config)
    _populate_partsupp(catalog, stream_for(seed, "partsupp"), config)
    _populate_customer(catalog, stream_for(seed, "customer"), config)
    _populate_orders_and_lineitem(catalog, stream_for(seed, "orders"), config)
    return catalog
