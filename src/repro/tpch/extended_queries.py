"""Extended TPC-H suite beyond the paper's four queries.

The paper evaluates on Q1/Q4/Q6/Q13; a system a downstream user would
adopt needs broader coverage. These builders add four more decision-
support queries exercising the engine features the paper's suite
doesn't touch — multi-join chains, top-N (sort + limit), conditional
aggregation, and post-aggregation arithmetic:

* **Q3** shipping priority: customer ⋈ orders ⋈ lineitem, revenue per
  order, top 10.
* **Q10** returned-item reporting: a three-join chain with revenue per
  customer, top 20.
* **Q12** shipping modes and order priority: lineitem-orders join with
  conditional counts per ship mode.
* **Q14** promotion effect: aggregate arithmetic over a lineitem-part
  join.

Each carries a sharing pivot like the paper's suite, so all of the
policy machinery applies to them unchanged.
"""

from __future__ import annotations

from repro.engine.expressions import and_, col, eq, in_, lt, mul, sub, udf
from repro.engine.plan import (
    AggSpec,
    aggregate,
    filter_,
    hash_join,
    limit,
    project,
    scan,
    sort,
)
from repro.storage.catalog import Catalog
from repro.storage.schema import DataType, date_to_ordinal
from repro.tpch.queries import TpchQuery

__all__ = ["q3", "q10", "q12", "q14", "EXTENDED_QUERIES", "build_extended"]

_F = DataType.FLOAT
_I = DataType.INT
_S = DataType.STR


def _revenue_expr():
    return mul(col("l_extendedprice"), sub(1.0, col("l_discount")))


def q3(catalog: Catalog) -> TpchQuery:
    """Shipping priority: top 10 undelivered orders by revenue."""
    cutoff = date_to_ordinal(1995, 3, 15)
    customers = project(
        filter_(
            scan(catalog, "customer", columns=["c_custkey", "c_mktsegment"],
                 op_id="q3_customer_scan"),
            eq(col("c_mktsegment"), "BUILDING"),
            op_id="q3_customer_filter",
        ),
        [("c_custkey", col("c_custkey"), _I)],
        op_id="q3_customer_project",
    )
    orders = project(
        filter_(
            scan(catalog, "orders",
                 columns=["o_orderkey", "o_custkey", "o_orderdate",
                          "o_shippriority"],
                 op_id="q3_orders_scan"),
            lt(col("o_orderdate"), cutoff),
            op_id="q3_orders_filter",
        ),
        [
            ("o_orderkey", col("o_orderkey"), _I),
            ("o_custkey", col("o_custkey"), _I),
            ("o_orderdate", col("o_orderdate"), _I),
            ("o_shippriority", col("o_shippriority"), _I),
        ],
        op_id="q3_orders_project",
    )
    # Orders of BUILDING customers (semi join keeps the orders schema).
    building_orders = hash_join(
        build=customers, probe=orders,
        build_key="c_custkey", probe_key="o_custkey",
        join_type="semi", op_id="q3_cust_join",
    )
    lineitems = project(
        filter_(
            scan(catalog, "lineitem",
                 columns=["l_orderkey", "l_extendedprice", "l_discount",
                          "l_shipdate"],
                 op_id="q3_lineitem_scan"),
            lt(cutoff, col("l_shipdate")),
            op_id="q3_lineitem_filter",
        ),
        [
            ("l_orderkey", col("l_orderkey"), _I),
            ("revenue", _revenue_expr(), _F),
        ],
        op_id="q3_lineitem_project",
    )
    joined = hash_join(
        build=building_orders, probe=lineitems,
        build_key="o_orderkey", probe_key="l_orderkey",
        join_type="inner", op_id="q3_join",
    )
    grouped = aggregate(
        joined,
        group_by=["o_orderkey", "o_orderdate", "o_shippriority"],
        aggs=[AggSpec("sum", "revenue", col("revenue"))],
        op_id="q3_agg",
    )
    top = limit(
        sort(grouped, [("revenue", False), ("o_orderdate", True)],
             op_id="q3_sort"),
        10,
        op_id="q3_limit",
    )
    return TpchQuery(name="q3", plan=top, pivot="q3_join", kind="join-heavy")


def q10(catalog: Catalog) -> TpchQuery:
    """Returned item reporting: top 20 customers by lost revenue."""
    date_lo = date_to_ordinal(1993, 10, 1)
    date_hi = date_to_ordinal(1994, 1, 1)
    returned = project(
        filter_(
            scan(catalog, "lineitem",
                 columns=["l_orderkey", "l_extendedprice", "l_discount",
                          "l_returnflag"],
                 op_id="q10_lineitem_scan"),
            eq(col("l_returnflag"), "R"),
            op_id="q10_lineitem_filter",
        ),
        [
            ("l_orderkey", col("l_orderkey"), _I),
            ("revenue", _revenue_expr(), _F),
        ],
        op_id="q10_lineitem_project",
    )
    orders = project(
        filter_(
            scan(catalog, "orders",
                 columns=["o_orderkey", "o_custkey", "o_orderdate"],
                 op_id="q10_orders_scan"),
            and_(lt(date_lo - 1, col("o_orderdate")),
                 lt(col("o_orderdate"), date_hi)),
            op_id="q10_orders_filter",
        ),
        [
            ("o_orderkey", col("o_orderkey"), _I),
            ("o_custkey", col("o_custkey"), _I),
        ],
        op_id="q10_orders_project",
    )
    order_revenue = hash_join(
        build=orders, probe=returned,
        build_key="o_orderkey", probe_key="l_orderkey",
        join_type="inner", op_id="q10_join",
    )
    per_customer = aggregate(
        order_revenue,
        group_by=["o_custkey"],
        aggs=[AggSpec("sum", "revenue", col("revenue"))],
        op_id="q10_agg",
    )
    customers = project(
        scan(catalog, "customer",
             columns=["c_custkey", "c_name", "c_acctbal"],
             op_id="q10_customer_scan"),
        [
            ("c_custkey", col("c_custkey"), _I),
            ("c_name", col("c_name"), _S),
            ("c_acctbal", col("c_acctbal"), _F),
        ],
        op_id="q10_customer_project",
    )
    named = hash_join(
        build=per_customer, probe=customers,
        build_key="o_custkey", probe_key="c_custkey",
        join_type="inner", op_id="q10_name_join",
    )
    top = limit(
        sort(named, [("revenue", False), ("c_custkey", True)],
             op_id="q10_sort"),
        20,
        op_id="q10_limit",
    )
    return TpchQuery(name="q10", plan=top, pivot="q10_join",
                     kind="join-heavy")


def q12(catalog: Catalog) -> TpchQuery:
    """Shipping modes: high/low-priority line counts per ship mode."""
    date_lo = date_to_ordinal(1994, 1, 1)
    date_hi = date_to_ordinal(1995, 1, 1)
    lineitems = project(
        filter_(
            scan(catalog, "lineitem",
                 columns=["l_orderkey", "l_shipmode", "l_commitdate",
                          "l_receiptdate", "l_shipdate"],
                 op_id="q12_lineitem_scan"),
            and_(
                in_(col("l_shipmode"), ("MAIL", "SHIP")),
                lt(col("l_commitdate"), col("l_receiptdate")),
                lt(col("l_shipdate"), col("l_commitdate")),
                lt(date_lo - 1, col("l_receiptdate")),
                lt(col("l_receiptdate"), date_hi),
            ),
            op_id="q12_lineitem_filter",
        ),
        [
            ("l_orderkey", col("l_orderkey"), _I),
            ("l_shipmode", col("l_shipmode"), _S),
        ],
        op_id="q12_lineitem_project",
    )
    orders = project(
        scan(catalog, "orders", columns=["o_orderkey", "o_orderpriority"],
             op_id="q12_orders_scan"),
        [
            ("o_orderkey2", col("o_orderkey"), _I),
            ("o_orderpriority", col("o_orderpriority"), _S),
        ],
        op_id="q12_orders_project",
    )
    joined = hash_join(
        build=orders, probe=lineitems,
        build_key="o_orderkey2", probe_key="l_orderkey",
        join_type="inner", op_id="q12_join",
    )

    def is_high(priority):
        return 1 if priority in ("1-URGENT", "2-HIGH") else 0

    def is_low(priority):
        return 0 if priority in ("1-URGENT", "2-HIGH") else 1

    counted = aggregate(
        joined,
        group_by=["l_shipmode"],
        aggs=[
            AggSpec("sum", "high_line_count",
                    udf("is_high_priority", is_high, col("o_orderpriority"))),
            AggSpec("sum", "low_line_count",
                    udf("is_low_priority", is_low, col("o_orderpriority"))),
        ],
        op_id="q12_agg",
    )
    plan = sort(counted, [("l_shipmode", True)], op_id="q12_sort")
    return TpchQuery(name="q12", plan=plan, pivot="q12_join",
                     kind="join-heavy")


def q14(catalog: Catalog) -> TpchQuery:
    """Promotion effect: percent of revenue from PROMO parts."""
    date_lo = date_to_ordinal(1995, 9, 1)
    date_hi = date_to_ordinal(1995, 10, 1)
    lineitems = project(
        filter_(
            scan(catalog, "lineitem",
                 columns=["l_partkey", "l_extendedprice", "l_discount",
                          "l_shipdate"],
                 op_id="q14_lineitem_scan"),
            and_(lt(date_lo - 1, col("l_shipdate")),
                 lt(col("l_shipdate"), date_hi)),
            op_id="q14_lineitem_filter",
        ),
        [
            ("l_partkey", col("l_partkey"), _I),
            ("revenue", _revenue_expr(), _F),
        ],
        op_id="q14_lineitem_project",
    )
    parts = project(
        scan(catalog, "part", columns=["p_partkey", "p_type"],
             op_id="q14_part_scan"),
        [
            ("p_partkey", col("p_partkey"), _I),
            ("p_type", col("p_type"), _S),
        ],
        op_id="q14_part_project",
    )
    joined = hash_join(
        build=parts, probe=lineitems,
        build_key="p_partkey", probe_key="l_partkey",
        join_type="inner", op_id="q14_join",
    )

    def promo_part(revenue, p_type):
        return revenue if p_type == "PROMO" else 0.0

    sums = aggregate(
        joined,
        group_by=[],
        aggs=[
            AggSpec("sum", "promo",
                    udf("promo_revenue", promo_part, col("revenue"),
                        col("p_type"))),
            AggSpec("sum", "total", col("revenue")),
        ],
        op_id="q14_agg",
    )

    def percent(promo, total):
        if not total:
            return 0.0
        return 100.0 * promo / total

    plan = project(
        sums,
        [("promo_revenue",
          udf("promo_percent", percent, col("promo"), col("total")), _F)],
        op_id="q14_percent",
    )
    return TpchQuery(name="q14", plan=plan, pivot="q14_join",
                     kind="join-heavy")


EXTENDED_QUERIES = {"q3": q3, "q10": q10, "q12": q12, "q14": q14}


def build_extended(name: str, catalog: Catalog) -> TpchQuery:
    """Build one of the extended-suite queries by name."""
    try:
        builder = EXTENDED_QUERIES[name]
    except KeyError:
        raise KeyError(
            f"unknown extended query {name!r}; "
            f"available: {sorted(EXTENDED_QUERIES)}"
        ) from None
    return builder(catalog)
