"""Comment-text generation for TPC-H columns.

TPC-H comments are pseudo-sentences over a fixed vocabulary. The only
query in our suite whose *answer* depends on comment content is Q13,
which filters orders whose comment matches ``%special%requests%``;
the generator therefore plants that pattern with a controlled
probability so Q13's selectivity is realistic and deterministic.
"""

from __future__ import annotations

from repro.tpch.rng import Stream

__all__ = ["comment", "SPECIAL_REQUEST_PROBABILITY", "matches_special_requests"]

_WORDS = (
    "furiously", "quickly", "carefully", "blithely", "slyly", "ironic",
    "final", "pending", "regular", "express", "bold", "silent", "even",
    "special", "unusual", "deposits", "requests", "accounts", "packages",
    "theodolites", "instructions", "platelets", "foxes", "asymptotes",
    "dependencies", "pinto", "beans", "sleep", "wake", "nag", "haggle",
    "cajole", "integrate", "boost", "detect", "engage", "maintain",
)

SPECIAL_REQUEST_PROBABILITY = 0.02


def comment(stream: Stream, min_words: int = 4, max_words: int = 10,
            plant_special: bool = False) -> str:
    """One pseudo-sentence; optionally force the Q13 pattern in."""
    n = stream.uniform_int(min_words, max_words)
    words = [stream.choice(_WORDS) for _ in range(n)]
    if plant_special:
        # "special" strictly before "requests" with arbitrary filler,
        # which is what LIKE '%special%requests%' requires.
        pos = stream.uniform_int(0, max(len(words) - 2, 0))
        words[pos:pos] = ["special", "requests"]
    return " ".join(words)


def matches_special_requests(text: str) -> bool:
    """Evaluate LIKE '%special%requests%' (Q13's predicate)."""
    first = text.find("special")
    if first < 0:
        return False
    return text.find("requests", first + len("special")) >= 0
