"""Quickstart: open a session, submit queries, let the system decide.

The facade in four steps:

1. open a :class:`~repro.db.session.Session` on a TPC-H catalog with a
   named :class:`~repro.db.config.RuntimeConfig` preset — the session
   wires simulator, buffer pool, memory broker and scan sharing for
   you;
2. build TPC-H Q6 fluently (``table(...).where(...).agg(...)``) — the
   builder lowers to the engine's plan IR, so schema errors surface at
   build time;
3. submit 16 clients' worth and call ``run_all()``: the session groups
   identical submissions by pivot signature, consults the Section-4
   model (adjusted by the live resource outlook), and shares or runs
   independently on its own;
4. read everything from the returned ``QueryResult``s — rows,
   simulated latency, the sharing verdict, resource counters.

The hand-wired ``Engine`` path is shown once at the end as the
low-level escape hatch.

Run: ``python examples/quickstart.py``
"""

from repro import Database, RuntimeConfig
from repro.engine import AggSpec
from repro.engine.expressions import and_, col, lt, mul
from repro.storage import date_to_ordinal
from repro.tpch.generator import generate

CLIENTS = 16


def q6_builder(session):
    """TPC-H Q6, fluently: fused scan stage + scalar aggregation."""
    predicate = and_(
        lt(date_to_ordinal(1993, 1, 1) - 1, col("l_shipdate")),
        lt(col("l_shipdate"), date_to_ordinal(1996, 1, 1)),
        lt(col("l_discount"), 0.09),
        lt(col("l_quantity"), 45.0),
    )
    return (
        session.table("lineitem", columns=["l_shipdate", "l_discount",
                                           "l_quantity", "l_extendedprice"])
        .where(predicate)
        .agg(AggSpec("sum", "revenue",
                     mul(col("l_extendedprice"), col("l_discount"))))
        .named("q6")
    )


def session_api(catalog) -> None:
    """The facade decides: share on 1 cpu, run independently on 32."""
    print(f"1) Session API — {CLIENTS} identical Q6 clients, auto-shared")
    for processors in (1, 32):
        config = RuntimeConfig(processors=processors)
        session = Database.open(catalog, config)
        query = q6_builder(session)
        for i in range(CLIENTS):
            session.submit(query, label=f"q6#{i}")
        results = session.run_all()
        first = results[0]
        verdict = "SHARE" if first.shared else "run independently"
        decision = first.decision
        z = f"Z = {decision.benefit:.2f}" if decision is not None else "-"
        print(f"   {processors:>2} cpus: model says {verdict} ({z}); "
              f"batch finished at {first.makespan:,.0f} sim-units, "
              f"group of {first.group_size}")
    print()


def presets(catalog) -> None:
    """The same query under the named runtime presets."""
    print("2) Presets — one line of config wires the whole storage layer")
    for name in ("laptop", "cmp32", "unbounded"):
        session = Database.open(catalog, name)
        result = session.run(q6_builder(session), label="q6")
        resources = result.resources.render().splitlines()[0]
        print(f"   {name:>9}: {len(result.rows)} row(s) in "
              f"{result.latency:,.0f} sim-units | {resources}")
    print()


def escape_hatch(catalog) -> None:
    """The low-level layer is still public: hand-wire an Engine."""
    from repro.engine import Engine
    from repro.sim import Simulator
    from repro.tpch.queries import build

    query = build("q6", catalog)
    sim = Simulator(processors=32)
    engine = Engine(catalog, sim)
    engine.execute_group([query.plan] * CLIENTS, pivot_op_id=query.pivot,
                         labels=[f"q6#{i}" for i in range(CLIENTS)])
    sim.run()
    print("3) Low-level escape hatch — Engine.execute_group by hand")
    print(f"   forced sharing on 32 cpus: makespan {sim.now:,.0f} sim-units")
    print("   (the session above declined this for a reason: forced")
    print("   sharing serializes the scan pivot behind one consumer.)")


if __name__ == "__main__":
    catalog = generate(scale_factor=0.0005, seed=7)
    session_api(catalog)
    presets(catalog)
    escape_hatch(catalog)
