"""Quickstart: should these queries share work?

Walks the library's three layers in ~60 lines:

1. model a query analytically and ask the Section-4 model whether a
   group of clients should share it (the paper's Q6 example);
2. run the same decision through a profiled TPC-H query;
3. execute a shared group on the staged engine and watch the
   serialization penalty appear in simulated time.

Run: ``python examples/quickstart.py``
"""

from repro.core import QuerySpec, ShareAdvisor, chain, op
from repro.engine import Engine
from repro.profiling import QueryProfiler
from repro.sim import Simulator
from repro.tpch.generator import generate
from repro.tpch.queries import build


def analytical_decision() -> None:
    """The paper's Q6: scan (w=9.66, s=10.34) feeding an aggregate."""
    q6 = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)),
                   label="q6")
    print("1) Analytical model — paper's Q6 parameters")
    for processors in (1, 2, 8, 32):
        advisor = ShareAdvisor(processors=processors)
        group = [q6.relabeled(f"q6#{i}") for i in range(32)]
        decision = advisor.evaluate(group, pivot_name="scan")
        verdict = "SHARE" if decision.share else "run independently"
        print(f"   {processors:>2} cpus, 32 clients: predicted "
              f"Z = {decision.benefit:.2f} -> {verdict}")
    print()


def profiled_decision() -> None:
    """Profile a real TPC-H Q6 on the engine, then decide."""
    catalog = generate(scale_factor=0.0005, seed=7)
    query = build("q6", catalog)
    profile = QueryProfiler(catalog).profile(query.plan, query.pivot,
                                             label="q6")
    spec = profile.to_query_spec()
    pivot = profile.operator(query.pivot)
    print("2) Profiled model — engine-measured parameters")
    print(f"   scan stage: w = {pivot.work:.0f}, s = {pivot.output_cost:.0f} "
          f"per consumer (s/w = {pivot.output_cost / pivot.work:.2f})")
    for processors in (1, 32):
        advisor = ShareAdvisor(processors=processors)
        group = [spec.relabeled(f"q6#{i}") for i in range(16)]
        decision = advisor.evaluate(group, pivot_name=query.pivot)
        verdict = "SHARE" if decision.share else "run independently"
        print(f"   {processors:>2} cpus, 16 clients: predicted "
              f"Z = {decision.benefit:.2f} -> {verdict}")
    print()


def staged_execution() -> None:
    """Measure the trade-off on the simulated CMP directly."""
    catalog = generate(scale_factor=0.0005, seed=7)
    query = build("q6", catalog)
    print("3) Staged engine — measured speedup of sharing 16 clients")
    for processors in (1, 32):
        times = {}
        for shared in (False, True):
            sim = Simulator(processors=processors)
            engine = Engine(catalog, sim)
            labels = [f"q6#{i}" for i in range(16)]
            if shared:
                engine.execute_group([query.plan] * 16,
                                     pivot_op_id=query.pivot, labels=labels)
            else:
                for label in labels:
                    engine.execute(query.plan, label)
            sim.run()
            times[shared] = sim.now
        speedup = times[False] / times[True]
        print(f"   {processors:>2} cpus: unshared {times[False]:,.0f} vs "
              f"shared {times[True]:,.0f} sim-units -> "
              f"measured Z = {speedup:.2f}")
    print()
    print("Sharing helps on the uniprocessor and hurts on the 32-way CMP —")
    print("the trade-off the paper is about, reproduced end to end.")


if __name__ == "__main__":
    analytical_decision()
    profiled_decision()
    staged_execution()
