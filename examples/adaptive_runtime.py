"""A self-tuning engine: online estimation, no offline profiling.

The paper profiles queries offline and notes that online estimation
has "no significant barriers". This example runs the full loop live:

1. an open system (Poisson arrivals) submits Q6 to a cold engine;
2. the online policy explores a couple of shared groups to identify
   the scan stage's per-consumer cost s;
3. from then on it decides from the learned model — sharing on the
   small machine, refusing to share on the CMP — with no human in the
   loop.

It also prints the Section 8.1 partitioning the learned model would
recommend for a burst of 24 identical queries.

Run: ``python examples/adaptive_runtime.py``
"""

from repro.core import ShareAdvisor
from repro.db import RuntimeConfig
from repro.policies import OnlineModelGuidedPolicy
from repro.tpch.generator import generate
from repro.tpch.queries import build
from repro.workload import WorkloadMix, run_open_system


def run_machine(catalog, q6, processors: int) -> None:
    policy = OnlineModelGuidedPolicy({"q6": q6}, exploration_budget=2)
    result = run_open_system(
        catalog,
        policy,
        WorkloadMix.single("q6", seed=11),
        arrival_rate=1.0 / 4_000.0,
        config=RuntimeConfig(processors=processors),
        horizon=500_000.0,
        drain=100_000.0,
        seed=11,
    )
    estimator = policy.estimators["q6"]
    print(f"machine with {processors} processors:")
    print(f"  arrivals {result.submitted}, completed {result.completed}, "
          f"mean response {result.mean_response_time:,.0f} sim-units")
    print(f"  exploration shares spent: {policy.exploration_shares}; "
          f"estimator ready: {estimator.ready()}")
    if estimator.ready():
        spec = estimator.current_spec()
        pivot = next(o for o in spec.operators() if o.name == q6.pivot)
        print(f"  learned scan stage: w = {pivot.work:,.0f}, "
              f"s = {pivot.output_cost:,.0f} per consumer")
        advisor = ShareAdvisor(processors=processors)
        plan = advisor.best_partitioning(spec, q6.pivot, clients=24)
        print(f"  Section 8.1 plan for a 24-query burst: "
              f"{plan.n_groups} group(s) of {plan.group_size} "
              f"on {plan.processors_per_group:.1f} cpus each")
    print()


def main() -> None:
    catalog = generate(scale_factor=0.0005, seed=11)
    q6 = build("q6", catalog)
    print("Cold start: the engine has never seen Q6 before.\n")
    run_machine(catalog, q6, processors=1)
    run_machine(catalog, q6, processors=32)
    print("Same code, opposite conclusions — learned from live traffic.")


if __name__ == "__main__":
    main()
