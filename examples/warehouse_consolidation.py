"""Capacity planning for a consolidated data warehouse.

Scenario from the paper's introduction: "a single machine could host a
significant subset of an enterprise's data warehousing operations",
with many analysts running the same dashboard queries concurrently.
The operator must choose (a) how large a sharing group to allow per
query type, and (b) whether sharing should be enabled at all on the
next hardware generation.

This example uses the profiler + model to produce a sizing table: for
each query type and machine size, the best sharing group size and the
predicted throughput gain — exactly the decision procedure Section 8
builds into the engine, used here offline for planning.

Run: ``python examples/warehouse_consolidation.py``
"""

from repro.core import ShareAdvisor
from repro.core.model import sharing_benefit
from repro.profiling import QueryProfiler
from repro.tpch.generator import generate
from repro.tpch.queries import QUERIES, build

MACHINE_SIZES = (1, 2, 8, 16, 32)
ANALYSTS = 24  # concurrent identical dashboards per query type


def main() -> None:
    catalog = generate(scale_factor=0.0005, seed=21)
    profiler = QueryProfiler(catalog)

    print(f"Sizing table for {ANALYSTS} concurrent analysts per query type")
    print(f"{'query':>6} {'kind':>11} | " +
          " | ".join(f"{n:>2} cpus" for n in MACHINE_SIZES))
    print("-" * (22 + 10 * len(MACHINE_SIZES)))

    for name in sorted(QUERIES):
        query = build(name, catalog)
        profile = profiler.profile(query.plan, query.pivot, label=name)
        spec = profile.to_query_spec()
        cells = []
        for processors in MACHINE_SIZES:
            advisor = ShareAdvisor(processors=processors)
            best = advisor.best_group_size(spec, query.pivot,
                                           max_size=ANALYSTS)
            group = [spec.relabeled(f"{name}#{i}") for i in range(ANALYSTS)]
            z = sharing_benefit(group, query.pivot, processors,
                                closed_system=True)
            cells.append(f"g={best:<2} Z={z:4.1f}"[:12].rjust(7))
        print(f"{name:>6} {query.kind:>11} | " + " | ".join(cells))

    print()
    print("g = best sharing group size the model recommends (1 = never")
    print("share); Z = predicted speedup of sharing all analysts at once.")
    print("Join-heavy queries keep their full sharing benefit on big CMPs;")
    print("scan-heavy queries must give up sharing as core counts grow.")


if __name__ == "__main__":
    main()
