"""Always-share vs never-share vs model-guided on a live mixed workload.

A miniature of the paper's Figure 6 experiment: a closed system of
analysts submits a mix of scan-heavy (Q1) and join-heavy (Q4) queries
against two machines — a small 2-way box and a 32-way CMP — under each
of the three sharing policies. The model-guided policy profiles both
query types first (Section 3.1), then decides per arrival.

Run: ``python examples/policy_comparison.py``
"""

from repro.policies import AlwaysShare, ModelGuidedPolicy, NeverShare
from repro.profiling import QueryProfiler
from repro.tpch.generator import generate
from repro.tpch.queries import build
from repro.workload import WorkloadMix, run_closed_system

N_CLIENTS = 12
Q4_FRACTION = 0.5
WARMUP = 100_000.0
WINDOW = 400_000.0


def main() -> None:
    catalog = generate(scale_factor=0.0005, seed=33)

    # Offline profiling pass for the model-guided policy.
    profiler = QueryProfiler(catalog)
    specs = {}
    for name in ("q1", "q4"):
        query = build(name, catalog)
        profile = profiler.profile(query.plan, query.pivot, label=name)
        specs[name] = (profile.to_query_spec(), query.pivot)

    mix = WorkloadMix.two_way("q1", "q4", Q4_FRACTION, seed=1)
    print(f"{N_CLIENTS} clients, {Q4_FRACTION:.0%} join-heavy queries\n")
    for processors in (2, 32):
        print(f"machine: {processors} processors")
        results = {}
        for policy in (AlwaysShare(), ModelGuidedPolicy(specs), NeverShare()):
            result = run_closed_system(
                catalog, policy, mix,
                n_clients=N_CLIENTS, processors=processors,
                warmup=WARMUP, window=WINDOW,
            )
            results[policy.name] = result
            print(f"  {policy.name:>6}: throughput "
                  f"{result.throughput * 1e6:7.1f} q/Munit, "
                  f"utilization {result.utilization:.0%}, "
                  f"shared {result.shared_submissions} / "
                  f"solo {result.solo_submissions} submissions")
        best = max(results, key=lambda k: results[k].throughput)
        print(f"  -> best policy here: {best}\n")

    print("The small box rewards aggressive sharing; the CMP punishes it.")
    print("Only the model-guided policy is safe on both.")


if __name__ == "__main__":
    main()
