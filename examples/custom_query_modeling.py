"""Modeling your own queries: stop-&-go operators, joins and phases.

The Section-4 model handles fully pipelined plans; real plans contain
sorts and hash builds. This example shows the Section-5 toolkit on a
custom report query:

    orders JOIN lineitem (hash join), sorted output, shared scans

— building the model spec with :mod:`repro.core.joins`, decomposing it
into pipelined phases, and asking where (and with how many peers)
sharing pays off on different machines.

Run: ``python examples/custom_query_modeling.py``
"""

from repro.core import QuerySpec, op
from repro.core.joins import hash_join, sort_operator
from repro.core.phases import PhasedQuery, decompose


def build_report_query() -> QuerySpec:
    """A model-level plan: two scans -> hash join -> sort -> emit."""
    orders_scan = op("orders_scan", 4.0, 0.5)
    lineitem_scan = op("lineitem_scan", 16.0, 1.0)
    join = hash_join(
        "join",
        build=orders_scan,
        probe=lineitem_scan,
        build_work=2.0,
        probe_work=3.0,
        output_cost=0.4,
    )
    sorted_out = sort_operator(
        "sort", join, run_work=2.5, merge_work=1.0, replay_work=0.3,
        output_cost=0.2,
    )
    return QuerySpec(op("emit", 0.5, 0.0, sorted_out), label="report")


def main() -> None:
    query = build_report_query()

    print("Plan:", ", ".join(query.operator_names()))
    print("Blocking operators:",
          ", ".join(n.name for n in query.blocking_operators()))
    print()

    phases = decompose(query)
    print(f"Section 5.2 decomposition -> {len(phases)} phases:")
    for phase in phases:
        ops = ", ".join(phase.query.operator_names())
        print(f"  [{phase.kind:>8}] {phase.query.label}: {ops}")
    print()

    phased = PhasedQuery(query)
    print("Sharing the lineitem scan (below the hash build):")
    header = f"{'m':>4} | " + " | ".join(f"{n:>7} cpus" for n in (1, 4, 16, 32))
    print(header)
    print("-" * len(header))
    for m in (2, 8, 24):
        cells = []
        for n in (1, 4, 16, 32):
            z = phased.sharing_benefit("lineitem_scan", m=m, n=n)
            cells.append(f"Z={z:8.2f}")
        print(f"{m:>4} | " + " | ".join(cells))
    print()
    print("The scan can only be shared during the build phase (its")
    print("consumers are gone once the hash table exists); the phase")
    print("decomposition accounts for exactly that.")


if __name__ == "__main__":
    main()
